//! Full-system wiring and the main simulation loop.

use std::fs;
use std::path::Path;
use std::sync::Arc;

use ndp_common::config::{OffloadPolicy, SystemConfig};
use ndp_common::error::{PacketSummary, SimError};
use ndp_common::fault::{FaultAction, FaultConfig, FaultInjector, FaultStats, InjectedFault};
use ndp_common::footprint::{self, RaceDetector};
use ndp_common::ids::{Cycle, HmcId, Node};
use ndp_common::invariant::Invariants;
use ndp_common::link::Link;
use ndp_common::obs::perf::{Perf, PerfConfig, StageOutcome};
use ndp_common::obs::{Obs, ObsConfig};
use ndp_common::packet::{Packet, PacketKind};
use ndp_common::port::{Component, Edge, Fabric, FabricCtx, Op, Stage};
use ndp_common::snap::{SnapError, SnapReader, SnapWriter};
use ndp_common::watchdog::{
    CreditBalance, QueueDepth, StallReport, Watchdog, DEFAULT_WATCHDOG_CYCLES,
};
use ndp_compiler::{compile, CompiledKernel, CompilerConfig};
use ndp_energy::Activity;
use ndp_gpu::sm::{Sm, SmConfig};
use ndp_gpu::uncore::L2Slice;
use ndp_hmc::HmcStack;
use ndp_isa::program::Program;
use ndp_memnet::MemNetwork;
use ndp_nsu::Nsu;

use crate::checkpoint;
use crate::offload::OffloadController;
use crate::result::RunResult;
use crate::trace::{TraceSite, Tracer};

// Section tags of the checkpoint payload, in `System::snapshot` order. A
// reader that drifts out of sync fails on the next tag with a named error
// instead of misdecoding everything downstream.
const SEC_CLOCK: u16 = 0x10;
const SEC_SMS: u16 = 0x11;
const SEC_SLICES: u16 = 0x12;
const SEC_LINKS: u16 = 0x13;
const SEC_STACKS: u16 = 0x14;
const SEC_NET: u16 = 0x15;
const SEC_NSUS: u16 = 0x16;
const SEC_CTRL: u16 = 0x17;
const SEC_INVARIANTS: u16 = 0x18;
const SEC_WATCHDOG: u16 = 0x19;
const SEC_FAULTS: u16 = 0x1a;
const SEC_OBS: u16 = 0x1b;

/// The simulated machine.
pub struct System {
    pub cfg: SystemConfig,
    pub kernel: Arc<CompiledKernel>,
    sms: Vec<Sm>,
    slices: Vec<L2Slice>,
    /// GPU→HMC links (up) and HMC→GPU links (down), one pair per stack.
    up: Vec<Link>,
    down: Vec<Link>,
    stacks: Vec<HmcStack>,
    net: MemNetwork,
    nsus: Vec<Nsu>,
    pub ctrl: OffloadController,
    /// Optional packet tracer (Fig. 2 walkthroughs); disabled by default.
    pub tracer: Tracer,
    /// Optional observability layer (latency histograms, occupancy
    /// time-series, event export); disabled by default.
    pub obs: Obs,
    /// Optional perf self-profiling layer (per-stage wall-time/idle
    /// attribution, throughput heartbeats); disabled by default, armed by
    /// `NDP_PERF=1` or [`System::enable_perf`]. Read-only: it never
    /// changes simulated behaviour.
    pub perf: Perf,
    /// Protocol-invariant engine, fed from the fabric's observation site.
    invariants: Invariants,
    /// Forward-progress watchdog (`None` disables; `NDP_WATCHDOG=0`).
    watchdog: Option<Watchdog>,
    /// Deterministic fault injector (`None` = no faults, the default).
    faults: Option<FaultInjector>,
    now: Cycle,
    ndp_on: bool,
    nsu_div: u64,
    /// Event-driven stage skipping: quiescent stages report `Skipped`
    /// instead of running, and `run_inner` jumps `now` over whole-system
    /// idle spans. On by default; `NDP_NO_SKIP=1` (or
    /// [`System::set_skip`]) forces exhaustive per-cycle ticking.
    /// Results are bit-identical either way — only wall-clock changes.
    skip: bool,
    /// Tick the 8 stack interiors (and NSUs) on scoped threads between
    /// fabric barriers. Off by default; `NDP_PARALLEL=1` or
    /// [`System::set_parallel`]. Deterministic: each thread owns one
    /// component and all cross-component traffic stays on fabric edges.
    parallel: bool,
    /// `NDP_RACE=1` shared-state race detector (DESIGN.md §16), shared
    /// with the controller. `None` when disarmed: the member loops then
    /// skip all accessor marking and the recording hooks reduce to one
    /// branch, so the disarmed cost is zero (goldens are byte-identical
    /// with the detector armed too — it is strictly read-only).
    race: Option<Arc<RaceDetector>>,
}

impl System {
    /// Build a system for one kernel under one configuration. Panics if
    /// the static verifiers reject the kernel's offload partition or the
    /// lifted fabric graph ([`System::try_new`] returns the error instead).
    pub fn new(cfg: SystemConfig, program: &Program) -> Self {
        match Self::try_new(cfg, program) {
            Ok(sys) => sys,
            Err(e) => panic!("static verification failed: {e}"),
        }
    }

    /// Fallible [`System::new`]: runs both static verification passes
    /// (ndp-lint's Pass 1 over the compiled offload blocks, Pass 2 over
    /// the lifted fabric pipeline) before wiring the machine.
    pub fn try_new(cfg: SystemConfig, program: &Program) -> Result<Self, SimError> {
        let kernel = Arc::new(compile(program, &CompilerConfig::default()));
        Self::try_with_kernel(cfg, kernel)
    }

    /// Panicking [`System::try_with_kernel`].
    pub fn with_kernel(cfg: SystemConfig, kernel: Arc<CompiledKernel>) -> Self {
        match Self::try_with_kernel(cfg, kernel) {
            Ok(sys) => sys,
            Err(e) => panic!("static verification failed: {e}"),
        }
    }

    /// Static verification gate of every construction path: Pass 1 diffs
    /// each offload block's annotations against the program text, Pass 2
    /// checks the lifted fabric graph. The first finding comes back as a
    /// [`SimError::BadPartition`] / [`SimError::BadFabric`].
    fn verify_static(cfg: &SystemConfig, kernel: &CompiledKernel) -> Result<(), SimError> {
        if let Some(d) = ndp_isa::verify_blocks(&kernel.program, &kernel.blocks)
            .into_iter()
            .next()
        {
            return Err(SimError::BadPartition {
                kernel: kernel.program.name.to_string(),
                location: d.location(),
                detail: d.detail,
            });
        }
        if let Some(d) = crate::fabric_model::fabric_graph(cfg)
            .check()
            .into_iter()
            .next()
        {
            return Err(SimError::BadFabric {
                check: d.check,
                detail: d.detail,
            });
        }
        Ok(())
    }

    pub fn try_with_kernel(
        cfg: SystemConfig,
        kernel: Arc<CompiledKernel>,
    ) -> Result<Self, SimError> {
        Self::verify_static(&cfg, &kernel)?;
        let ndp_on = cfg.offload != OffloadPolicy::Never;
        let blocks = Arc::new(kernel.blocks.clone());
        let bpc = cfg.bytes_per_cycle(cfg.gpu.link_gbps);
        let link_lat = cfg.gpu.link_latency;
        let mut sms = Vec::with_capacity(cfg.gpu.num_sms);
        for i in 0..cfg.gpu.num_sms {
            sms.push(Sm::new(
                SmConfig::from_system(i as u16, &cfg),
                &cfg,
                Arc::clone(&kernel),
            ));
        }
        // Assign warps to SMs in CTA-contiguous chunks.
        let warps_per_cta = cfg.gpu.warps_per_cta;
        for wg in 0..kernel.program.num_warps {
            let cta = wg / warps_per_cta;
            let sm = (cta as usize) % cfg.gpu.num_sms;
            sms[sm].assign_warp(wg, u32::MAX, cta);
        }
        let slices = (0..cfg.l2_slices())
            .map(|i| L2Slice::new(i as u8, &cfg))
            .collect();
        let up = (0..cfg.hmc.num_hmcs)
            .map(|_| Link::new(bpc, link_lat, cfg.gpu.link_queue_capacity))
            .collect();
        let down = (0..cfg.hmc.num_hmcs)
            .map(|_| Link::new(bpc, link_lat, cfg.gpu.link_queue_capacity))
            .collect();
        let stacks = (0..cfg.hmc.num_hmcs)
            .map(|i| HmcStack::new(HmcId(i as u8), &cfg))
            .collect();
        let net = MemNetwork::new(
            cfg.hmc.num_hmcs,
            cfg.bytes_per_cycle(cfg.hmc.link_gbps),
            cfg.hmc.memnet_hop_latency,
            cfg.hmc.memnet_queue_capacity,
        );
        let nsus = (0..cfg.hmc.num_hmcs)
            .map(|i| Nsu::new(HmcId(i as u8), &cfg, Arc::clone(&blocks)))
            .collect();
        let mut ctrl = OffloadController::new(&cfg, blocks);
        let nsu_div = cfg.nsu_divider();
        let race = ndp_common::env::flag_or_die("NDP_RACE")
            .unwrap_or(false)
            .then(|| {
                Arc::new(RaceDetector::new(
                    crate::fabric_model::footprints(),
                    ndp_common::env::flag_or_die("NDP_RACE_LOG").unwrap_or(false),
                ))
            });
        ctrl.set_race(race.clone());
        Ok(System {
            cfg,
            kernel,
            sms,
            slices,
            up,
            down,
            stacks,
            net,
            nsus,
            ctrl,
            tracer: Tracer::disabled(),
            obs: Obs::disabled(),
            perf: Perf::new(PerfConfig::from_env(), stage_names()),
            invariants: Invariants::new(Invariants::deep_default()),
            watchdog: match ndp_common::env::parse_or_die::<Cycle>("NDP_WATCHDOG") {
                Some(0) => None,
                Some(t) => Some(Watchdog::new(t, &Tx::NAMES)),
                None => Some(Watchdog::new(DEFAULT_WATCHDOG_CYCLES, &Tx::NAMES)),
            },
            faults: FaultConfig::from_env().map(FaultInjector::new),
            now: 0,
            ndp_on,
            nsu_div,
            skip: !ndp_common::env::flag_or_die("NDP_NO_SKIP").unwrap_or(false),
            parallel: ndp_common::env::flag_or_die("NDP_PARALLEL").unwrap_or(false),
            race,
        })
    }

    /// Enable or disable quiescence-aware stage skipping and next-event
    /// time jumps (overrides the `NDP_NO_SKIP` default). Skipping is an
    /// execution strategy, not a model change: outcomes are bit-identical.
    pub fn set_skip(&mut self, skip: bool) {
        self.skip = skip;
    }

    /// Enable or disable parallel ticking of stack/NSU interiors between
    /// fabric barriers (overrides the `NDP_PARALLEL` default).
    pub fn set_parallel(&mut self, parallel: bool) {
        self.parallel = parallel;
    }

    /// Arm or disarm the shared-state race detector (overrides the
    /// `NDP_RACE` default; tests use this rather than the process-global
    /// environment). Detection is read-only: arming it never changes
    /// simulation output, it only adds typed `DataRace` /
    /// `UndeclaredAccess` errors when declarations and behaviour disagree.
    pub fn set_race(&mut self, on: bool) {
        self.race = on.then(|| {
            Arc::new(RaceDetector::new(
                crate::fabric_model::footprints(),
                ndp_common::env::flag_or_die("NDP_RACE_LOG").unwrap_or(false),
            ))
        });
        self.ctrl.set_race(self.race.clone());
    }

    /// Handle to the armed race detector (for post-run stats in tests).
    #[doc(hidden)]
    pub fn race_handle(&self) -> Option<Arc<RaceDetector>> {
        self.race.clone()
    }

    /// Treat `stage` as a run-spanning parallel region in the armed
    /// detector — the deterministic way to demonstrate what parallel
    /// `tick:sms` would trip over (see `tests/static_verify.rs`).
    #[doc(hidden)]
    pub fn debug_force_race_parallel(&mut self, stage: &'static str) {
        if let Some(r) = &self.race {
            r.force_parallel(stage);
        }
    }

    /// Override the watchdog threshold (`None` disables the watchdog).
    pub fn set_watchdog(&mut self, threshold: Option<Cycle>) {
        self.watchdog = threshold.map(|t| Watchdog::new(t, &Tx::NAMES));
    }

    /// Arm the deterministic fault injector for this run.
    pub fn inject_faults(&mut self, cfg: FaultConfig) {
        self.faults = cfg.is_active().then(|| FaultInjector::new(cfg));
    }

    /// Force deep per-token invariant checking on or off (overrides the
    /// `NDP_DEEP_INVARIANTS` / debug-build default).
    pub fn set_deep_invariants(&mut self, deep: bool) {
        self.invariants.set_deep(deep);
    }

    /// Occurrence counts of injected faults, if the injector is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|f| f.stats)
    }

    /// Record up to `limit` packet movements for protocol inspection.
    pub fn enable_trace(&mut self, limit: usize) {
        self.tracer = Tracer::enabled(limit);
    }

    /// Turn on the observability layer (transaction-latency tracking,
    /// occupancy sampling, protocol event recording). Observation is
    /// read-only: enabling it never perturbs simulation outcomes.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        self.obs = Obs::new(cfg);
    }

    /// Arm (or, with a disabled config, disarm) the perf self-profiling
    /// layer, overriding whatever `NDP_PERF` said at construction.
    /// Profiling is read-only: it never perturbs simulation outcomes, and
    /// its wall-clock readings never feed back into the model.
    pub fn enable_perf(&mut self, cfg: PerfConfig) {
        self.perf = Perf::new(cfg, stage_names());
    }

    /// One SM-clock cycle: execute the fabric pipeline, surfacing any
    /// protocol violation detected during it.
    pub fn try_tick(&mut self) -> Result<(), SimError> {
        let now = self.now;
        self.perf.cycle_begin(now);
        Fabric { stages: PIPELINE }.tick(self, now)?;
        self.now += 1;
        // Stack interiors tick through the infallible `Component` trait;
        // poll their parked errors.
        for st in &mut self.stacks {
            if let Some(e) = st.take_error() {
                return Err(e);
            }
        }
        // The race detector's hooks are likewise infallible; poll its
        // parked DataRace/UndeclaredAccess error.
        if let Some(r) = &self.race {
            if let Some(e) = r.take_error() {
                return Err(e);
            }
        }
        Ok(())
    }

    /// One SM-clock cycle; panics on a protocol violation (driver loops
    /// that want structured errors use [`System::try_tick`] or
    /// [`System::run`]).
    pub fn tick(&mut self) {
        if let Err(e) = self.try_tick() {
            panic!("protocol violation: {e}");
        }
    }

    /// Push one occupancy sample of every hot queue into the time-series
    /// set. Called on the observability sampling interval only.
    fn sample_occupancy(&mut self) {
        let (mut pend, mut ready) = (0usize, 0usize);
        for sm in &self.sms {
            let (p, r) = sm.ndp_buffer_depths();
            pend += p;
            ready += r;
        }
        self.obs.offer_sample("sm_ndp_pending", pend as f64);
        self.obs.offer_sample("sm_ndp_ready", ready as f64);

        let (mut cmd, mut rd, mut wr, mut slots) = (0usize, 0usize, 0usize, 0usize);
        for n in &self.nsus {
            let (c, r, w) = n.buffer_depths();
            cmd += c;
            rd += r;
            wr += w;
            slots += n.occupied_slots();
        }
        self.obs.offer_sample("nsu_cmd_queue", cmd as f64);
        self.obs.offer_sample("nsu_read_data", rd as f64);
        self.obs.offer_sample("nsu_write_addr", wr as f64);
        self.obs.offer_sample("nsu_warp_slots", slots as f64);

        let (cc, cr, cw) = self.ctrl.mgr.total_in_use();
        self.obs.offer_sample("credit_cmd_in_use", cc as f64);
        self.obs.offer_sample("credit_read_in_use", cr as f64);
        self.obs.offer_sample("credit_write_in_use", cw as f64);

        let up: usize = self.up.iter().map(|l| l.in_transit()).sum();
        let down: usize = self.down.iter().map(|l| l.in_transit()).sum();
        self.obs.offer_sample("gpu_link_up_in_transit", up as f64);
        self.obs
            .offer_sample("gpu_link_down_in_transit", down as f64);

        let vq: usize = self.stacks.iter().map(|s| s.queued_requests()).sum();
        self.obs.offer_sample("vault_queued", vq as f64);
        self.obs
            .offer_sample("memnet_in_flight", self.net.queued_packets() as f64);
    }

    /// The current simulated cycle.
    pub fn cycle(&self) -> Cycle {
        self.now
    }

    /// Everything drained?
    pub fn is_done(&self) -> bool {
        self.sms.iter().all(|s| s.is_done())
            && self
                .slices
                .iter()
                .all(|s| s.is_idle() && s.writes_outstanding == 0)
            && self.up.iter().all(|l| l.is_idle())
            && self.down.iter().all(|l| l.is_idle())
            && self.stacks.iter().all(|s| !s.busy())
            && self.net.is_idle()
            && self.nsus.iter().all(|n| !n.busy())
    }

    /// The shared main loop of [`System::run`] and
    /// [`System::run_with_kind_stats`] (they used to duplicate it).
    ///
    /// Checks, on the same 256-cycle boundary the drain check always ran
    /// on: recorded invariant violations (surfaced as `Err`), completion,
    /// and — only while work is outstanding — the forward-progress
    /// watchdog, which aborts the run early with a structured
    /// [`StallReport`] instead of spinning silently to the cycle cap.
    fn run_inner(&mut self, max_cycles: u64) -> Result<Outcome, SimError> {
        let mut auto = checkpoint::AutoCheckpoint::from_env(
            self.kernel.program.name,
            checkpoint::config_fingerprint(&self.cfg),
            self.now,
        );
        let stall_dump = ndp_common::env::string("NDP_STALL_DUMP");
        let mut out = Outcome {
            timed_out: true,
            stall: None,
        };
        // The boundary checks sit at the *top* of the loop so they also run
        // at the entry cycle: a system restored from a checkpoint re-enters
        // here mid-run (possibly already drained, or mid-stall), and must
        // check/complete at exactly the cycle the uninterrupted run did.
        loop {
            if self.now.is_multiple_of(256) {
                if let Some(v) = self.invariants.first_violation() {
                    return Err(SimError::InvariantViolation {
                        cycle: self.now,
                        detail: v.to_string(),
                    });
                }
                if self.is_done() {
                    out.timed_out = false;
                    break;
                }
                // Periodic checkpoints ride the same boundary as the
                // drain/watchdog checks, so per-cycle and event-driven
                // runs save at identical cycles. Reading state only —
                // a save never perturbs the simulation.
                if let Some(a) = &mut auto {
                    if let Some(path) = a.due(self.now) {
                        let image = self.snapshot();
                        checkpoint::write_atomic(path, &image).map_err(|e| {
                            checkpoint::bad("write", format!("{}: {e}", path.display()))
                        })?;
                    }
                }
                let instrs: u64 = self.sms.iter().map(|s| s.stats.issued).sum::<u64>()
                    + self.nsus.iter().map(|n| n.instrs).sum::<u64>();
                if let Some(w) = &mut self.watchdog {
                    w.note_instrs(self.now, instrs);
                    if let Some(stalled_for) = w.stalled_for(self.now) {
                        out.stall = Some(Box::new(self.build_stall_report(stalled_for)));
                        if let Some(dir) = &stall_dump {
                            self.dump_stall_checkpoint(Path::new(dir));
                        }
                        break;
                    }
                }
            }
            if self.now >= max_cycles {
                break;
            }
            if self.skip {
                if let Some(j) = self.jump_target(max_cycles) {
                    self.account_jump(j);
                    self.now = j;
                    continue;
                }
            }
            self.try_tick()?;
        }
        if out.timed_out && out.stall.is_none() && self.is_done() {
            out.timed_out = false;
        }
        if !out.timed_out {
            self.check_conservation()?;
        }
        Ok(out)
    }

    /// Next-event jump target: `Some(j)` when *no* pipeline stage has work
    /// at `now`, where `j > now` is the earliest cycle anything could
    /// happen — the minimum stage horizon, capped at the next 256-cycle
    /// check boundary (so invariant/done/watchdog checks run at exactly
    /// the cycles a per-cycle run checks them) and at `max_cycles`.
    /// `None` means some stage has work now: tick normally.
    fn jump_target(&self, max_cycles: u64) -> Option<Cycle> {
        let now = self.now;
        let next_check = (now / 256 + 1) * 256;
        let mut target = next_check.min(max_cycles);
        for idx in 0..PIPELINE.len() {
            match self.stage_horizon(now, idx) {
                Some(c) if c <= now => return None,
                Some(c) => target = target.min(c),
                None => {}
            }
        }
        Some(target)
    }

    /// Book the span `[self.now, j)` as elided: per-stage perf accounting
    /// (`gated` for closed NSU-clock cycles, `skipped` otherwise) and
    /// component stat replay via `note_skipped`, exactly as if each cycle
    /// had been ticked and every stage had reported Gated/Skipped.
    fn account_jump(&mut self, j: Cycle) {
        let now = self.now;
        let span = j - now;
        // Open NSU-clock cycles in [now, j): multiples of nsu_div.
        let open = if self.ndp_on {
            j.div_ceil(self.nsu_div) - now.div_ceil(self.nsu_div)
        } else {
            0
        };
        for (idx, stage) in PIPELINE.iter().enumerate() {
            let (gated, skipped) = match stage.gate {
                Gate::Always => (0, span),
                Gate::NsuClock => (span - open, open),
            };
            self.perf.jump(idx, gated, skipped);
            if skipped > 0 {
                self.note_stage_skipped(idx, skipped);
            }
        }
    }

    /// Replay `k` skipped invocations of stage `idx` into the components
    /// whose per-cycle tick has observable idle effects (SM stall stats,
    /// stack clock-domain crossing, NSU tick counters). Every other
    /// stage's idle tick is a pure no-op.
    fn note_stage_skipped(&mut self, idx: usize, k: u64) {
        match &PIPELINE[idx].op {
            Op::Tick(Comp::Sms) => {
                for sm in &mut self.sms {
                    sm.note_skipped(k);
                }
            }
            Op::Tick(Comp::Stacks) => {
                for st in &mut self.stacks {
                    Component::note_skipped(st, k);
                }
            }
            Op::Tick(Comp::Nsus) => {
                for n in &mut self.nsus {
                    n.note_skipped(k);
                }
            }
            _ => {}
        }
    }

    /// Drained-system conservation: protocol counters balance and every
    /// NSU buffer credit has been returned.
    fn check_conservation(&self) -> Result<(), SimError> {
        self.invariants.check_drained(self.now)?;
        let (cmd, read, write) = self.ctrl.mgr.total_in_use();
        if (cmd, read, write) != (0, 0, 0) {
            return Err(SimError::CreditLeak {
                cycle: self.now,
                cmd,
                read,
                write,
            });
        }
        Ok(())
    }

    /// Like [`System::run`] but also returns per-packet-kind GPU-link byte
    /// totals (diagnostics).
    pub fn run_with_kind_stats(
        mut self,
        max_cycles: u64,
    ) -> Result<(RunResult, [u64; PacketKind::COUNT]), SimError> {
        let out = self.run_inner(max_cycles)?;
        let mut kinds = [0u64; PacketKind::COUNT];
        for l in self.up.iter().chain(self.down.iter()) {
            for (total, b) in kinds.iter_mut().zip(l.stats.kind_bytes.iter()) {
                *total += b;
            }
        }
        Ok((self.collect(out), kinds))
    }

    /// Run to completion (or the safety cap) and collect results.
    ///
    /// `Err` is a protocol violation; a timeout or watchdog stall is
    /// `Ok` with `timed_out=true` (and `stall=Some(..)` when the watchdog
    /// fired).
    pub fn run(mut self, max_cycles: u64) -> Result<RunResult, SimError> {
        let out = self.run_inner(max_cycles)?;
        Ok(self.collect(out))
    }

    fn collect(self, out: Outcome) -> RunResult {
        let mut r = RunResult {
            workload: self.kernel.program.name.to_string(),
            config: format!("{:?}", self.cfg.offload),
            cycles: self.now,
            timed_out: out.timed_out,
            stall: out.stall,
            faults: self.faults.as_ref().map(|f| f.stats),
            ..Default::default()
        };
        for sm in &self.sms {
            r.issue.merge(&sm.stats);
            r.l1.merge(&sm.l1_stats());
            let (p, q) = sm.buffer_peaks();
            r.sm_buffer_peaks.0 = r.sm_buffer_peaks.0.max(p);
            r.sm_buffer_peaks.1 = r.sm_buffer_peaks.1.max(q);
        }
        for s in &self.slices {
            r.l2.merge(&s.stats());
            r.ondie_bytes += s.ondie_bytes;
        }
        for st in &self.stacks {
            r.dram.merge(&st.dram_stats());
            r.intra_hmc_bytes += st.intra_bytes;
        }
        for l in self.up.iter().chain(self.down.iter()) {
            r.gpu_link_bytes += l.stats.bytes;
            r.gpu_link_ndp_bytes += l.stats.ndp_bytes;
            r.inval_bytes += l.stats.inval_bytes;
        }
        r.memnet_bytes = self.net.total_bytes();
        let mut occ = 0.0;
        let mut icu = 0.0;
        for n in &self.nsus {
            r.nsu_instrs += n.instrs;
            occ += n.avg_occupancy();
            icu += n.icache_utilization(self.cfg.nsu.icache_bytes);
        }
        r.nsu_occupancy = occ / self.nsus.len() as f64;
        r.nsu_icache_util = icu / self.nsus.len() as f64;
        r.offered = self.ctrl.offered;
        r.offloaded = self.ctrl.offloaded;

        r.activity = Activity {
            seconds: self.now as f64 / (self.cfg.gpu.sm_clock_mhz as f64 * 1e6),
            gpu_instrs: r.issue.issued,
            nsu_instrs: r.nsu_instrs,
            l1_accesses: r.l1.read_accesses() + r.l1.writes,
            l2_accesses: r.l2.read_accesses() + r.l2.writes,
            ondie_bytes: r.ondie_bytes,
            gpu_link_bytes: r.gpu_link_bytes,
            memnet_bytes: r.memnet_bytes,
            intra_hmc_bytes: r.intra_hmc_bytes,
            dram_activations: r.dram.activations,
            dram_bytes: r.dram.read_bytes + r.dram.write_bytes,
            num_nsus: if self.ndp_on { self.nsus.len() } else { 0 },
            num_hmcs: self.stacks.len(),
            memnet_powered: self.ndp_on,
        };
        if self.obs.is_on() {
            r.obs = Some(self.obs.report());
        }
        if self.perf.is_on() {
            let mut perf = self.perf.report(self.now);
            perf.sm_ready_occupancy = self.sms.iter().map(|sm| sm.ready_occupancy()).collect();
            r.perf = Some(perf);
        }
        r
    }

    /// Snapshot the whole machine at the moment the watchdog fired: every
    /// non-empty queue, credit-pool balances, in-flight offload tokens with
    /// lifecycle state, protocol counters, and a wait-for summary naming
    /// what starved resources are blocked on.
    fn build_stall_report(&self, stalled_for: Cycle) -> StallReport {
        fn push(queues: &mut Vec<QueueDepth>, name: String, depth: usize) {
            if depth > 0 {
                queues.push(QueueDepth { name, depth });
            }
        }
        let mut queues = Vec::new();
        for (i, sm) in self.sms.iter().enumerate() {
            push(&mut queues, format!("sm{i}.out"), sm.out.len());
            let (pend, ready) = sm.ndp_buffer_depths();
            push(&mut queues, format!("sm{i}.ndp_pending"), pend);
            push(&mut queues, format!("sm{i}.ndp_ready"), ready);
        }
        for (i, s) in self.slices.iter().enumerate() {
            push(&mut queues, format!("l2_{i}.to_mem"), s.to_mem.len());
            push(&mut queues, format!("l2_{i}.to_sm"), s.to_sm.len());
        }
        for (i, l) in self.up.iter().enumerate() {
            push(&mut queues, format!("up_link{i}"), l.in_transit());
        }
        for (i, l) in self.down.iter().enumerate() {
            push(&mut queues, format!("down_link{i}"), l.in_transit());
        }
        for (i, st) in self.stacks.iter().enumerate() {
            push(&mut queues, format!("hmc{i}.queued"), st.queued_requests());
        }
        push(&mut queues, "memnet".to_string(), self.net.queued_packets());
        for (i, n) in self.nsus.iter().enumerate() {
            let (cmd, rd, wr) = n.buffer_depths();
            push(&mut queues, format!("nsu{i}.cmd_queue"), cmd);
            push(&mut queues, format!("nsu{i}.read_data"), rd);
            push(&mut queues, format!("nsu{i}.write_addr"), wr);
            push(
                &mut queues,
                format!("nsu{i}.warp_slots"),
                n.occupied_slots(),
            );
        }

        let caps = [
            ("cmd", self.cfg.nsu.cmd_entries),
            ("read", self.cfg.nsu.read_data_entries),
            ("write", self.cfg.nsu.write_addr_entries),
        ];
        let mut credits = Vec::new();
        let mut wait_for = Vec::new();
        for h in 0..self.stacks.len() {
            let avail = self.ctrl.mgr.available(HmcId(h as u8));
            for ((pool, cap), avail) in caps.iter().zip([avail.0, avail.1, avail.2]) {
                let in_use = cap.saturating_sub(avail);
                if in_use > 0 {
                    credits.push(CreditBalance {
                        pool: format!("hmc{h}.{pool}"),
                        in_use,
                        capacity: *cap,
                    });
                }
                if avail == 0 && *cap > 0 {
                    wait_for.push(format!(
                        "hmc{h}: NSU {pool} credit pool exhausted (0 of {cap} available) — \
                         senders starve on edge stack_to_nsu"
                    ));
                }
            }
        }
        for sm in &self.sms {
            wait_for.extend(sm.wait_summary(self.now));
        }
        if let Some(f) = &self.faults {
            if f.cfg.withhold_credits {
                wait_for.push(format!(
                    "fault injector withheld {} credit returns (NDP_FAULT_WITHHOLD_CREDITS)",
                    f.stats.credits_withheld
                ));
            }
        }
        if wait_for.is_empty() {
            wait_for.push("no waiting component identified".to_string());
        }

        let mut tokens = self.invariants.inflight_tokens();
        for n in &self.nsus {
            tokens.extend(n.resident_tokens());
        }

        StallReport {
            cycle: self.now,
            stalled_for,
            threshold: self.watchdog.as_ref().map_or(0, |w| w.threshold()),
            edges: self
                .watchdog
                .as_ref()
                .map_or_else(Vec::new, |w| w.edges().to_vec()),
            queues,
            credits,
            tokens,
            protocol: self.invariants.counters(),
            wait_for,
        }
    }

    /// Serialize the complete mutable machine state into a versioned,
    /// checksummed checkpoint image (the full file contents, header
    /// included).
    ///
    /// Included: the clock and execution-strategy flags, every SM (warp
    /// contexts, scoreboards, L1 + MSHRs, NDP buffers, output queue),
    /// every L2 slice, both GPU link directions, every HMC stack (vault
    /// queues, DRAM bank timing, port FIFOs), the memory network, every
    /// NSU (warp slots, command/read/write buffers, credits), the offload
    /// controller (credit pools, hill climber, WTA counters), the
    /// protocol-invariant engine, the watchdog, the fault injector, and
    /// the observability layer (it feeds `RunResult`).
    ///
    /// Deliberately excluded — rebuilt by fresh construction on restore:
    /// the config, the compiled kernel and everything derived from them
    /// (capacities, timings, memory map, topology), both guarded by
    /// header fingerprints; the packet tracer and the perf self-profiler,
    /// which are host-side diagnostics that never influence simulated
    /// state.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.tag(SEC_CLOCK);
        w.u64(self.now);
        w.bool(self.skip);
        w.bool(self.parallel);
        w.tag(SEC_SMS);
        w.len(self.sms.len());
        for sm in &self.sms {
            sm.snap(&mut w);
        }
        w.tag(SEC_SLICES);
        w.len(self.slices.len());
        for s in &self.slices {
            s.snap(&mut w);
        }
        w.tag(SEC_LINKS);
        w.len(self.up.len());
        for l in &self.up {
            l.snap(&mut w);
        }
        w.len(self.down.len());
        for l in &self.down {
            l.snap(&mut w);
        }
        w.tag(SEC_STACKS);
        w.len(self.stacks.len());
        for st in &self.stacks {
            st.snap(&mut w);
        }
        w.tag(SEC_NET);
        self.net.snap(&mut w);
        w.tag(SEC_NSUS);
        w.len(self.nsus.len());
        for n in &self.nsus {
            n.snap(&mut w);
        }
        w.tag(SEC_CTRL);
        self.ctrl.snap(&mut w);
        w.tag(SEC_INVARIANTS);
        self.invariants.snap(&mut w);
        w.tag(SEC_WATCHDOG);
        w.bool(self.watchdog.is_some());
        if let Some(wd) = &self.watchdog {
            wd.snap(&mut w);
        }
        w.tag(SEC_FAULTS);
        w.bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.snap(&mut w);
        }
        w.tag(SEC_OBS);
        self.obs.snap(&mut w);
        checkpoint::seal(&self.cfg, &self.kernel, self.now, w.into_bytes())
    }

    /// Rebuild a system from a checkpoint image taken by
    /// [`System::snapshot`] under exactly this (config, kernel) pair.
    ///
    /// The machine is first constructed fresh (re-deriving every
    /// config/kernel-dependent shape), then overwritten component by
    /// component. Any mismatch — magic, schema version, config or kernel
    /// fingerprint, truncation, checksum, or a payload that does not fit
    /// the constructed shapes — comes back as a typed
    /// [`SimError::BadCheckpoint`]; corrupt input never panics and never
    /// resumes silently wrong.
    pub fn try_restore(
        cfg: SystemConfig,
        kernel: Arc<CompiledKernel>,
        bytes: &[u8],
    ) -> Result<System, SimError> {
        let (header, payload) = checkpoint::open(bytes, &cfg, &kernel)?;
        let mut sys = System::try_with_kernel(cfg, kernel)?;
        let mut r = SnapReader::new(payload);
        sys.restore_payload(&mut r)
            .and_then(|()| r.finish())
            .map_err(|e| checkpoint::bad("decode", e.0))?;
        if sys.now != header.cycle {
            return Err(checkpoint::bad(
                "cycle",
                format!(
                    "header says cycle {}, payload carries cycle {}",
                    header.cycle, sys.now
                ),
            ));
        }
        Ok(sys)
    }

    /// Overwrite the freshly constructed machine from a verified payload.
    fn restore_payload(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        fn expect(what: &str, want: usize, got: usize) -> Result<(), SnapError> {
            if want == got {
                Ok(())
            } else {
                Err(SnapError(format!(
                    "system has {want} {what}, checkpoint has {got}"
                )))
            }
        }
        r.tag(SEC_CLOCK, "clock")?;
        self.now = r.u64()?;
        self.skip = r.bool()?;
        self.parallel = r.bool()?;
        r.tag(SEC_SMS, "sms")?;
        expect("SMs", self.sms.len(), r.len()?)?;
        for sm in &mut self.sms {
            sm.restore(r)?;
        }
        r.tag(SEC_SLICES, "slices")?;
        expect("L2 slices", self.slices.len(), r.len()?)?;
        for s in &mut self.slices {
            s.restore(r)?;
        }
        r.tag(SEC_LINKS, "links")?;
        expect("up links", self.up.len(), r.len()?)?;
        for l in &mut self.up {
            l.restore(r)?;
        }
        expect("down links", self.down.len(), r.len()?)?;
        for l in &mut self.down {
            l.restore(r)?;
        }
        r.tag(SEC_STACKS, "stacks")?;
        expect("HMC stacks", self.stacks.len(), r.len()?)?;
        for st in &mut self.stacks {
            st.restore(r)?;
        }
        r.tag(SEC_NET, "memnet")?;
        self.net.restore(r)?;
        r.tag(SEC_NSUS, "nsus")?;
        expect("NSUs", self.nsus.len(), r.len()?)?;
        for n in &mut self.nsus {
            n.restore(r)?;
        }
        r.tag(SEC_CTRL, "offload controller")?;
        self.ctrl.restore(r)?;
        r.tag(SEC_INVARIANTS, "invariants")?;
        self.invariants.restore(r)?;
        r.tag(SEC_WATCHDOG, "watchdog")?;
        self.watchdog = if r.bool()? {
            let mut wd = Watchdog::new(DEFAULT_WATCHDOG_CYCLES, &Tx::NAMES);
            wd.restore(r)?;
            Some(wd)
        } else {
            None
        };
        r.tag(SEC_FAULTS, "faults")?;
        self.faults = if r.bool()? {
            Some(FaultInjector::restore(r)?)
        } else {
            None
        };
        r.tag(SEC_OBS, "obs")?;
        self.obs = Obs::restore(r)?;
        Ok(())
    }

    /// Snapshot to `path` atomically (temp file + rename), so an
    /// interruption mid-save leaves the previous complete checkpoint
    /// intact.
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), SimError> {
        checkpoint::write_atomic(path, &self.snapshot())
            .map_err(|e| checkpoint::bad("write", format!("{}: {e}", path.display())))
    }

    /// [`System::try_restore`] from a file on disk.
    pub fn restore_from_file(
        cfg: SystemConfig,
        kernel: Arc<CompiledKernel>,
        path: &Path,
    ) -> Result<System, SimError> {
        let bytes = fs::read(path)
            .map_err(|e| checkpoint::bad("read", format!("{}: {e}", path.display())))?;
        Self::try_restore(cfg, kernel, &bytes)
    }

    /// Advance to exactly `target` using the session's execution strategy
    /// (per-cycle or event-driven), without the completion/watchdog checks
    /// of [`System::run`] — the "interrupt the run at cycle N" hook the
    /// checkpoint tests and external drivers use before snapshotting.
    pub fn run_until(&mut self, target: Cycle) -> Result<(), SimError> {
        while self.now < target {
            if self.skip {
                if let Some(j) = self.jump_target(target) {
                    self.account_jump(j);
                    self.now = j;
                    continue;
                }
            }
            self.try_tick()?;
        }
        Ok(())
    }

    /// Best-effort post-mortem snapshot next to a watchdog stall report
    /// (`NDP_STALL_DUMP=<dir>`). A write failure is reported on stderr but
    /// never masks the stall report itself.
    fn dump_stall_checkpoint(&self, dir: &Path) {
        let file = dir.join(format!(
            "stall-{}-cycle{}.{}",
            self.kernel.program.name,
            self.now,
            checkpoint::EXTENSION
        ));
        let res = fs::create_dir_all(dir)
            .and_then(|()| checkpoint::write_atomic(&file, &self.snapshot()));
        match res {
            Ok(()) => eprintln!(
                "watchdog stall: post-mortem checkpoint at {}",
                file.display()
            ),
            Err(e) => eprintln!("watchdog stall: post-mortem checkpoint failed: {e}"),
        }
    }
}

/// What `run_inner` resolved: drained, hit the cap, or stalled.
struct Outcome {
    timed_out: bool,
    stall: Option<Box<StallReport>>,
}

/// A kind of transmit port, replicated across lanes (one lane per SM,
/// slice, link, stack or NSU). Together with [`Rx`] these name every
/// structural edge of the machine.
#[derive(Debug, Clone, Copy)]
pub enum Tx {
    /// SM output queues → on-die interconnect.
    SmOut,
    /// L2 slice memory-side outputs → up links.
    SliceToMem,
    /// Up-link deliveries → stack logic layers.
    UpLink,
    /// Stack outputs → memory network.
    StackToMemnet,
    /// Stack outputs → local NSU.
    StackToNsu,
    /// Stack outputs → down links.
    StackToGpu,
    /// Memory-network deliveries → destination stack logic layers.
    NetDelivered,
    /// NSU outputs → local stack logic layers.
    NsuOut,
    /// Down-link deliveries → L2 slices or SMs.
    DownLink,
    /// L2 slice responses → SMs.
    SliceToSm,
}

impl Tx {
    /// Stable edge names, in [`Tx::index`] order — watchdog edge labels
    /// and fault-stream identifiers.
    pub const NAMES: [&'static str; 10] = [
        "sm_out",
        "slice_to_mem",
        "up_link",
        "stack_to_memnet",
        "stack_to_nsu",
        "stack_to_gpu",
        "net_delivered",
        "nsu_out",
        "down_link",
        "slice_to_sm",
    ];

    pub const fn index(self) -> usize {
        match self {
            Tx::SmOut => 0,
            Tx::SliceToMem => 1,
            Tx::UpLink => 2,
            Tx::StackToMemnet => 3,
            Tx::StackToNsu => 4,
            Tx::StackToGpu => 5,
            Tx::NetDelivered => 6,
            Tx::NsuOut => 7,
            Tx::DownLink => 8,
            Tx::SliceToSm => 9,
        }
    }

    pub const fn name(self) -> &'static str {
        Self::NAMES[self.index()]
    }
}

/// One concrete receiver in the routing table.
#[derive(Debug, Clone, Copy)]
pub enum Rx {
    /// SM-side input of an L2 slice.
    Slice(usize),
    UpLink(usize),
    /// Logic layer of a stack.
    Stack(usize),
    /// Memory-network injection point at a stack.
    Net(usize),
    Nsu(usize),
    DownLink(usize),
    /// Memory-side input of an L2 slice.
    SliceFromMem(usize),
    Sm(usize),
}

/// A component group ticked by one pipeline stage.
#[derive(Debug, Clone, Copy)]
pub enum Comp {
    Sms,
    Slices,
    UpLinks,
    Stacks,
    Net,
    Nsus,
    DownLinks,
}

/// Clock gate of a pipeline stage.
#[derive(Debug, Clone, Copy)]
pub enum Gate {
    Always,
    /// NSU clock domain: SM clock / divider, and only when NDP is on.
    NsuClock,
}

/// Non-packet side channels run as pipeline stages.
#[derive(Debug, Clone, Copy)]
pub enum SideChannel {
    /// NSU buffer-credit returns to the GPU's buffer manager (§4.3).
    Credits,
    /// Offload-controller epochs.
    Ctrl,
    /// Occupancy sampling (observability only; never feeds back).
    Sample,
}

const fn stage(op: Op<System>) -> Stage<System> {
    Stage {
        gate: Gate::Always,
        op,
    }
}

/// Display names for the PIPELINE stages, index-aligned with the stage
/// list — the perf layer's attribution labels (`tick:sms`, `edge:sm_out`,
/// `side:credits`, ...).
pub(crate) fn stage_names() -> Vec<String> {
    PIPELINE
        .iter()
        .map(|s| match &s.op {
            Op::Tick(c) => format!("tick:{}", format!("{c:?}").to_lowercase()),
            Op::Route(e) => format!("edge:{}", e.tx.name()),
            Op::Side(sc) => format!("side:{}", format!("{sc:?}").to_lowercase()),
        })
        .collect()
}

const fn edge(tx: Tx, site: Option<TraceSite>) -> Op<System> {
    Op::Route(Edge { tx, site })
}

/// The whole machine, one SM cycle, as data: tick a component group, move
/// packets across a routing-table edge, or run a side channel — in this
/// order. The stage order preserves the original hand-rolled phase order
/// exactly (SMs → slices → up links → stacks → memnet → NSUs → down links
/// → slice responses → controller).
pub(crate) const PIPELINE: &[Stage<System>] = &[
    stage(Op::Tick(Comp::Sms)),
    stage(edge(Tx::SmOut, Some(TraceSite::SmEject))),
    stage(Op::Tick(Comp::Slices)),
    stage(edge(Tx::SliceToMem, None)),
    stage(Op::Tick(Comp::UpLinks)),
    stage(edge(Tx::UpLink, Some(TraceSite::GpuLinkUp))),
    stage(Op::Tick(Comp::Stacks)),
    stage(edge(Tx::StackToMemnet, None)),
    stage(edge(Tx::StackToNsu, Some(TraceSite::ToNsu))),
    stage(edge(Tx::StackToGpu, None)),
    stage(Op::Tick(Comp::Net)),
    stage(edge(Tx::NetDelivered, None)),
    Stage {
        gate: Gate::NsuClock,
        op: Op::Tick(Comp::Nsus),
    },
    Stage {
        gate: Gate::NsuClock,
        op: edge(Tx::NsuOut, Some(TraceSite::FromNsu)),
    },
    Stage {
        gate: Gate::NsuClock,
        op: Op::Side(SideChannel::Credits),
    },
    stage(Op::Tick(Comp::DownLinks)),
    stage(edge(Tx::DownLink, Some(TraceSite::GpuLinkDown))),
    stage(edge(Tx::SliceToSm, None)),
    stage(Op::Side(SideChannel::Ctrl)),
    stage(Op::Side(SideChannel::Sample)),
];

impl FabricCtx for System {
    type Tx = Tx;
    type Rx = Rx;
    type Comp = Comp;
    type Gate = Gate;
    type Side = SideChannel;

    fn lanes(&self, tx: Tx) -> usize {
        match tx {
            Tx::SmOut => self.sms.len(),
            Tx::SliceToMem | Tx::SliceToSm => self.slices.len(),
            Tx::UpLink => self.up.len(),
            Tx::DownLink => self.down.len(),
            Tx::StackToMemnet | Tx::StackToNsu | Tx::StackToGpu | Tx::NetDelivered => {
                self.stacks.len()
            }
            Tx::NsuOut => self.nsus.len(),
        }
    }

    fn gate_open(&self, gate: Gate, now: Cycle) -> bool {
        match gate {
            Gate::Always => true,
            Gate::NsuClock => self.ndp_on && now.is_multiple_of(self.nsu_div),
        }
    }

    fn peek(&self, now: Cycle, tx: Tx, lane: usize) -> Option<&Packet> {
        match tx {
            Tx::SmOut => self.sms[lane].out.front(),
            Tx::SliceToMem => self.slices[lane].to_mem.front(),
            Tx::UpLink => self.up[lane].peek_ready(now),
            Tx::StackToMemnet => self.stacks[lane].to_memnet.front(),
            Tx::StackToNsu => self.stacks[lane].to_nsu.front(),
            Tx::StackToGpu => self.stacks[lane].to_gpu.front(),
            Tx::NetDelivered => self.net.peek_delivered(HmcId(lane as u8)),
            Tx::NsuOut => self.nsus[lane].out.front(),
            Tx::DownLink => self.down[lane].peek_ready(now),
            Tx::SliceToSm => self.slices[lane].to_sm.peek_ready(now),
        }
    }

    fn route(&self, now: Cycle, tx: Tx, lane: usize, p: &Packet) -> Result<Rx, SimError> {
        let unroutable = || SimError::Unroutable {
            edge: tx.name(),
            cycle: now,
            packet: PacketSummary::of(p),
        };
        Ok(match tx {
            // On-die interconnect: reads/writes address a slice directly;
            // NDP-protocol packets go to the slice fronting the stack that
            // owns their destination. Anything else is a routing bug.
            Tx::SmOut => match p.dst {
                Node::L2(h) => Rx::Slice(h as usize),
                other => match other.hmc() {
                    Some(h) => Rx::Slice(h.0 as usize),
                    None => return Err(unroutable()),
                },
            },
            Tx::SliceToMem => Rx::UpLink(lane),
            Tx::UpLink => Rx::Stack(lane),
            // The memory network only carries HMC-resident destinations.
            Tx::StackToMemnet => match p.dst.hmc() {
                Some(_) => Rx::Net(lane),
                None => return Err(unroutable()),
            },
            Tx::StackToNsu => Rx::Nsu(lane),
            Tx::StackToGpu => Rx::DownLink(lane),
            Tx::NetDelivered => Rx::Stack(lane),
            Tx::NsuOut => Rx::Stack(lane),
            Tx::DownLink => match p.dst {
                Node::L2(_) => Rx::SliceFromMem(lane),
                Node::Sm(s) => Rx::Sm(s as usize),
                _ => return Err(unroutable()),
            },
            Tx::SliceToSm => match p.dst {
                Node::Sm(i) => Rx::Sm(i as usize),
                _ => return Err(unroutable()),
            },
        })
    }

    fn can_accept(&self, rx: Rx, p: &Packet) -> bool {
        match rx {
            Rx::Slice(h) => self.slices[h].can_accept(),
            Rx::UpLink(h) => self.up[h].can_accept(),
            Rx::Net(h) => self.net.can_inject(HmcId(h as u8), p),
            Rx::DownLink(h) => self.down[h].can_accept(),
            // Stack logic layers, NSU inputs, slice memory-side inputs and
            // SM delivery are always-ready (their capacity is governed by
            // upstream credit/backpressure protocols).
            Rx::Stack(_) | Rx::Nsu(_) | Rx::SliceFromMem(_) | Rx::Sm(_) => true,
        }
    }

    fn pop(&mut self, now: Cycle, tx: Tx, lane: usize) -> Packet {
        match tx {
            Tx::SmOut => self.sms[lane].out.pop_front(),
            Tx::SliceToMem => self.slices[lane].to_mem.pop_front(),
            Tx::UpLink => self.up[lane].pop_ready(now),
            Tx::StackToMemnet => self.stacks[lane].to_memnet.pop_front(),
            Tx::StackToNsu => self.stacks[lane].to_nsu.pop_front(),
            Tx::StackToGpu => self.stacks[lane].to_gpu.pop_front(),
            Tx::NetDelivered => self.net.pop_delivered(HmcId(lane as u8)),
            Tx::NsuOut => self.nsus[lane].out.pop_front(),
            Tx::DownLink => self.down[lane].pop_ready(now),
            Tx::SliceToSm => self.slices[lane].pop_to_sm(now),
        }
        .expect("peeked head exists")
    }

    fn accept(&mut self, now: Cycle, rx: Rx, p: Packet) -> Result<(), SimError> {
        match rx {
            Rx::Slice(h) => self.slices[h].from_sm(now, p),
            Rx::UpLink(h) => self.up[h].push(p).expect("checked can_accept"),
            Rx::Stack(h) => self.stacks[h].accept(p),
            Rx::Net(h) => self
                .net
                .inject(HmcId(h as u8), p)
                .expect("checked can_inject"),
            Rx::Nsu(h) => self.nsus[h].deliver(now, p)?,
            Rx::DownLink(h) => self.down[h].push(p).expect("checked can_accept"),
            Rx::SliceFromMem(h) => {
                if matches!(p.kind, PacketKind::CacheInval { .. }) {
                    // §4.1: an in-flight write address drained. An orphan
                    // invalidation (no matching WTA) is an invariant
                    // violation, not a silent saturating decrement.
                    if !self.ctrl.note_inval(HmcId(h as u8)) {
                        self.invariants.record_external(
                            now,
                            &format!("orphan CacheInval at hmc{h} (no in-flight WTA)"),
                        );
                    }
                }
                self.slices[h].from_mem(p)
            }
            Rx::Sm(s) => self.sms[s].deliver(now, p, &mut self.ctrl)?,
        }
        Ok(())
    }

    fn tick_comp(&mut self, now: Cycle, comp: Comp) {
        // Per-component skip: a stage runs whenever *any* member has work,
        // but members that are individually quiescent take the (cheaper)
        // `note_skipped` path instead of a full tick. Same conservative
        // horizon contract as stage-level skipping, at member granularity.
        let skip = self.skip;
        // Race detection (NDP_RACE=1): bracket each member loop with an
        // epoch and mark which member is ticking on this thread, so the
        // controller's recording hooks can attribute every shared access.
        // `race_on` is false on the default path — zero cost disarmed.
        let race_on = self.race.is_some();
        match comp {
            Comp::Sms => {
                if let Some(r) = &self.race {
                    r.begin_members("tick:sms", false, now);
                }
                for (i, sm) in self.sms.iter_mut().enumerate() {
                    if skip && sm.next_work_at(now).is_none_or(|c| c > now) {
                        sm.note_skipped(1);
                    } else {
                        if race_on {
                            footprint::set_accessor("sm", i);
                        }
                        sm.tick(now, &mut self.ctrl);
                    }
                }
                if race_on {
                    footprint::clear_accessor();
                }
            }
            Comp::Slices => {
                if let Some(r) = &self.race {
                    r.begin_members("tick:slices", false, now);
                }
                for (i, s) in self.slices.iter_mut().enumerate() {
                    if skip && Component::next_work_at(s, now).is_none_or(|c| c > now) {
                        Component::note_skipped(s, 1);
                        continue;
                    }
                    if race_on {
                        footprint::set_accessor("l2_slice", i);
                    }
                    Component::tick(s, now);
                    for (block, hit) in s.block_events.drain(..) {
                        self.ctrl.note_l2_event(block, hit);
                    }
                }
                if race_on {
                    footprint::clear_accessor();
                }
            }
            Comp::UpLinks => {
                for l in &mut self.up {
                    if skip && Component::next_work_at(l, now).is_none_or(|c| c > now) {
                        Component::note_skipped(l, 1);
                    } else {
                        Component::tick(l, now);
                    }
                }
            }
            // Stack interiors (and NSUs, below) are independent between
            // fabric barriers: each owns its vaults/slots outright and all
            // cross-component traffic rides fabric edges, so ticking them
            // on scoped threads is deterministic by construction. The
            // ISSUE sketched this with rayon; the offline build has no
            // rayon, so `std::thread::scope` (stable std) stands in.
            Comp::Stacks => {
                let work_now =
                    |st: &HmcStack| !skip || Component::next_work_at(st, now) == Some(now);
                let par = self.parallel && self.stacks.iter().filter(|s| s.busy()).count() >= 2;
                if let Some(r) = &self.race {
                    r.begin_members("tick:stacks", par, now);
                }
                if par {
                    std::thread::scope(|sc| {
                        for (i, st) in self.stacks.iter_mut().enumerate() {
                            if work_now(st) {
                                sc.spawn(move || {
                                    // Accessor marks are thread-local and
                                    // die with the scoped thread.
                                    if race_on {
                                        footprint::set_accessor("stack", i);
                                    }
                                    Component::tick(st, now)
                                });
                            } else {
                                Component::note_skipped(st, 1);
                            }
                        }
                    });
                } else {
                    for (i, st) in self.stacks.iter_mut().enumerate() {
                        if work_now(st) {
                            if race_on {
                                footprint::set_accessor("stack", i);
                            }
                            Component::tick(st, now);
                        } else {
                            Component::note_skipped(st, 1);
                        }
                    }
                    if race_on {
                        footprint::clear_accessor();
                    }
                }
            }
            Comp::Net => Component::tick(&mut self.net, now),
            Comp::Nsus => {
                // `Comp::Nsus` only runs on open NSU-clock cycles, so the
                // member-level probe is in the NSU's own domain: delta 0 =
                // work on this open cycle.
                let work_now = |n: &Nsu| !skip || n.next_work_delta() == Some(0);
                let par = self.parallel && self.nsus.iter().filter(|n| n.busy()).count() >= 2;
                if let Some(r) = &self.race {
                    r.begin_members("tick:nsus", par, now);
                }
                if par {
                    std::thread::scope(|sc| {
                        for (i, n) in self.nsus.iter_mut().enumerate() {
                            if work_now(n) {
                                sc.spawn(move || {
                                    if race_on {
                                        footprint::set_accessor("nsu", i);
                                    }
                                    Component::tick(n, now)
                                });
                            } else {
                                // Inherent method: replays the NSU clock and
                                // occupancy accounting (the Component default
                                // is a no-op).
                                n.note_skipped(1);
                            }
                        }
                    });
                } else {
                    for (i, n) in self.nsus.iter_mut().enumerate() {
                        if work_now(n) {
                            if race_on {
                                footprint::set_accessor("nsu", i);
                            }
                            Component::tick(n, now);
                        } else {
                            n.note_skipped(1);
                        }
                    }
                    if race_on {
                        footprint::clear_accessor();
                    }
                }
            }
            Comp::DownLinks => {
                for l in &mut self.down {
                    if skip && Component::next_work_at(l, now).is_none_or(|c| c > now) {
                        Component::note_skipped(l, 1);
                    } else {
                        Component::tick(l, now);
                    }
                }
            }
        }
    }

    fn side(&mut self, now: Cycle, side: SideChannel) {
        match side {
            SideChannel::Credits => {
                let withhold = self.faults.as_ref().is_some_and(|f| f.cfg.withhold_credits);
                for h in 0..self.nsus.len() {
                    let c = self.nsus[h].take_credits();
                    if withhold {
                        // Fault injection: the returns are consumed but
                        // never credited back — the pools drain and the
                        // machine wedges (watchdog coverage test).
                        let n = (c.cmd + c.read + c.write) as u64;
                        if n > 0 {
                            if let Some(f) = &mut self.faults {
                                f.stats.credits_withheld += n;
                            }
                        }
                        continue;
                    }
                    // Over-release (a double credit return, e.g. from a
                    // duplicated packet) clamps the pool and is reported as
                    // an invariant violation instead of crashing the run.
                    let mut ok = true;
                    for _ in 0..c.cmd {
                        ok &= self.ctrl.mgr.credit_cmd(HmcId(h as u8));
                    }
                    if c.read > 0 {
                        ok &= self.ctrl.mgr.credit_read(HmcId(h as u8), c.read as usize);
                    }
                    if c.write > 0 {
                        ok &= self.ctrl.mgr.credit_write(HmcId(h as u8), c.write as usize);
                    }
                    if !ok {
                        self.invariants.record_external(
                            now,
                            &format!(
                                "credit over-release at hmc{h}: NSU returned more \
                                 credits than the GPU-side pools had outstanding"
                            ),
                        );
                    }
                }
            }
            SideChannel::Ctrl => self.ctrl.on_cycle(now),
            SideChannel::Sample => {
                if self.obs.sample_due(now) {
                    self.sample_occupancy();
                }
            }
        }
    }

    fn observe(&mut self, now: Cycle, site: TraceSite, p: &Packet) {
        self.tracer.record(now, site, p);
        self.obs.on_packet(now, site, p);
        self.invariants.on_packet(now, site, p);
    }

    fn fault(&self, _now: Cycle, tx: Tx, p: &Packet) -> FaultAction {
        match &self.faults {
            Some(f) => f.decide(tx.index() as u64, p),
            None => FaultAction::None,
        }
    }

    fn note_fault(&mut self, _now: Cycle, fault: InjectedFault) {
        if let Some(f) = &mut self.faults {
            f.note(fault);
        }
    }

    fn moved(&mut self, now: Cycle, tx: Tx) {
        if let Some(w) = &mut self.watchdog {
            w.note_move(now, tx.index());
        }
    }

    fn stage_done(&mut self, _now: Cycle, idx: usize, outcome: StageOutcome) {
        if matches!(outcome, StageOutcome::Skipped) {
            self.note_stage_skipped(idx, 1);
        }
        self.perf.stage(idx, outcome);
    }

    fn skip_enabled(&self) -> bool {
        self.skip
    }

    /// Quiescence horizon of one pipeline stage: earliest cycle ≥ `now` at
    /// which the stage could do real work, `None` if no future work is
    /// reachable without new input. Conservative: may report earlier than
    /// the true next event (spurious run = exact idle tick), never later.
    ///
    /// NSU-clock stages align their horizon up to the next open divided
    /// cycle, and report `None` outright when NDP is off (gate never
    /// opens) — this makes the same function valid both mid-tick (where
    /// the gate is already known open) and from [`System::jump_target`]
    /// at arbitrary cycles.
    fn stage_horizon(&self, now: Cycle, idx: usize) -> Option<Cycle> {
        fn min_over(it: impl Iterator<Item = Option<Cycle>>) -> Option<Cycle> {
            it.flatten().min()
        }
        let nsu_open = |d: u64| {
            if self.ndp_on {
                Some(now.next_multiple_of(self.nsu_div) + d * self.nsu_div)
            } else {
                None
            }
        };
        match &PIPELINE[idx].op {
            Op::Tick(c) => match c {
                Comp::Sms => min_over(self.sms.iter().map(|s| s.next_work_at(now))),
                Comp::Slices => {
                    min_over(self.slices.iter().map(|s| Component::next_work_at(s, now)))
                }
                Comp::UpLinks => min_over(self.up.iter().map(|l| Component::next_work_at(l, now))),
                Comp::Stacks => {
                    min_over(self.stacks.iter().map(|s| Component::next_work_at(s, now)))
                }
                Comp::Net => Component::next_work_at(&self.net, now),
                Comp::Nsus => min_over(
                    self.nsus
                        .iter()
                        .map(|n| n.next_work_delta().and_then(&nsu_open)),
                ),
                Comp::DownLinks => {
                    min_over(self.down.iter().map(|l| Component::next_work_at(l, now)))
                }
            },
            // Edge horizons are occupancy-driven: a queued head means work
            // now; latency-stamped lanes (links, the slice→SM return path)
            // expose their earliest ready cycle instead.
            Op::Route(e) => match e.tx {
                Tx::SmOut => self.sms.iter().any(|s| !s.out.is_empty()).then_some(now),
                Tx::SliceToMem => self
                    .slices
                    .iter()
                    .any(|s| !s.to_mem.is_empty())
                    .then_some(now),
                Tx::UpLink => min_over(self.up.iter().map(|l| l.next_delivery_at())),
                Tx::StackToMemnet => self
                    .stacks
                    .iter()
                    .any(|s| !s.to_memnet.is_empty())
                    .then_some(now),
                Tx::StackToNsu => self
                    .stacks
                    .iter()
                    .any(|s| !s.to_nsu.is_empty())
                    .then_some(now),
                Tx::StackToGpu => self
                    .stacks
                    .iter()
                    .any(|s| !s.to_gpu.is_empty())
                    .then_some(now),
                Tx::NetDelivered => self.net.has_delivered().then_some(now),
                Tx::NsuOut => {
                    if self.nsus.iter().any(|n| !n.out.is_empty()) {
                        nsu_open(0)
                    } else {
                        None
                    }
                }
                Tx::DownLink => min_over(self.down.iter().map(|l| l.next_delivery_at())),
                Tx::SliceToSm => min_over(self.slices.iter().map(|s| s.to_sm.next_ready())),
            },
            Op::Side(s) => match s {
                SideChannel::Credits => {
                    if self.nsus.iter().any(|n| n.has_pending_credits()) {
                        nsu_open(0)
                    } else {
                        None
                    }
                }
                SideChannel::Ctrl => self.ctrl.next_epoch_at(),
                SideChannel::Sample => self.obs.next_sample_at(now),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_workloads::{Scale, Workload};

    fn small(cfg: SystemConfig, w: Workload) -> RunResult {
        let mut c = cfg;
        c.gpu.num_sms = 8;
        if matches!(c.offload, OffloadPolicy::Never) {
            // keep NSUs idle
        }
        let p = w.build(&Scale {
            warps: 64,
            iters: 4,
        });
        System::new(c, &p)
            .run(2_000_000)
            .expect("no protocol violation")
    }

    #[test]
    fn baseline_vadd_completes() {
        let r = small(SystemConfig::baseline(), Workload::Vadd);
        assert!(!r.timed_out, "baseline VADD did not drain");
        assert!(r.cycles > 0);
        assert!(r.issue.issued > 0);
        assert!(r.gpu_link_bytes > 0, "streams must touch DRAM");
        assert_eq!(r.nsu_instrs, 0, "no NDP in baseline");
        assert_eq!(r.offloaded, 0);
    }

    #[test]
    fn naive_ndp_vadd_completes_and_uses_nsus() {
        let r = small(SystemConfig::naive_ndp(), Workload::Vadd);
        assert!(!r.timed_out, "NDP VADD did not drain");
        assert!(r.nsu_instrs > 0, "blocks must run on NSUs");
        assert!(r.offloaded > 0);
        assert!(r.memnet_bytes > 0, "cross-stack RDF responses expected");
        assert!(r.nsu_occupancy > 0.0);
    }

    #[test]
    fn ndp_reduces_gpu_link_traffic_for_streaming() {
        let base = small(SystemConfig::baseline(), Workload::Vadd);
        let ndp = small(SystemConfig::naive_ndp(), Workload::Vadd);
        assert!(
            ndp.gpu_link_bytes < base.gpu_link_bytes / 2,
            "NDP should slash GPU link bytes: {} vs {}",
            ndp.gpu_link_bytes,
            base.gpu_link_bytes
        );
    }

    #[test]
    fn indirect_workload_completes_under_ndp() {
        let r = small(SystemConfig::naive_ndp(), Workload::Bfs);
        assert!(!r.timed_out, "BFS did not drain");
        assert!(r.offloaded > 0);
    }

    #[test]
    fn barrier_workload_completes() {
        let r = small(SystemConfig::baseline(), Workload::Bprop);
        assert!(!r.timed_out, "BPROP did not drain");
    }

    #[test]
    fn wta_counters_drain_by_completion() {
        // §4.1: when the system is drained, no write addresses are in
        // flight anywhere — a page swap into any stack would be safe.
        let mut cfg = SystemConfig::naive_ndp();
        cfg.gpu.num_sms = 8;
        let p = Workload::Vadd.build(&ndp_workloads::Scale {
            warps: 64,
            iters: 4,
        });
        let mut sys = System::new(cfg, &p);
        let mut saw_unsafe = false;
        for _ in 0..2_000_000u64 {
            sys.tick();
            if sys.ctrl.wta_inflight.iter().any(|c| *c > 0) {
                saw_unsafe = true;
            }
            if sys.is_done() {
                break;
            }
        }
        assert!(sys.is_done(), "run did not drain");
        assert!(saw_unsafe, "offloaded stores must register in-flight WTAs");
        for h in 0..8u8 {
            assert!(
                sys.ctrl.page_remap_safe(ndp_common::ids::HmcId(h)),
                "stack {h} still has in-flight WTAs after drain"
            );
        }
    }

    #[test]
    fn invalidation_traffic_present_only_with_ndp() {
        let base = small(SystemConfig::baseline(), Workload::Vadd);
        assert_eq!(base.inval_bytes, 0);
        let ndp = small(SystemConfig::naive_ndp(), Workload::Vadd);
        assert!(ndp.inval_bytes > 0, "NSU writes must invalidate GPU cache");
        // §4.2 quantifies the overhead against the workload's baseline
        // off-chip traffic: it must be a small fraction.
        let frac = ndp.inval_bytes as f64 / base.gpu_link_bytes as f64;
        assert!(frac < 0.05, "inval overhead vs baseline traffic: {frac}");
    }
}
