//! Fig. 5 — impact of the target-NSU selection policy on off-chip memory
//! traffic.
//!
//! Monte-Carlo model matching §4.1.1: an offload block performs `n` memory
//! accesses mapped uniformly at random over 8 HMCs. Moving one access's
//! data to the target NSU costs 0 if it lives in the target stack, 1 unit
//! otherwise (it crosses the memory network once). Policies:
//!   * *first*: the stack of the first access becomes the target;
//!   * *optimal*: the stack holding the most accesses becomes the target.
//!
//! The figure plots traffic normalized to `n` (every access remote).

use ndp_common::rng::{bounded, splitmix64};

/// Traffic (in cross-stack transfers) for both policies on one random block
/// instance of `n` accesses over `hmcs` stacks.
fn one_instance(seed: u64, n: usize, hmcs: usize) -> (u64, u64) {
    let mut counts = vec![0u64; hmcs];
    let mut first = 0usize;
    for i in 0..n {
        let h = bounded(splitmix64(seed ^ (i as u64) << 32), hmcs as u64) as usize;
        if i == 0 {
            first = h;
        }
        counts[h] += 1;
    }
    let total = n as u64;
    let best = *counts.iter().max().expect("nonempty");
    let first_traffic = total - counts[first];
    let optimal_traffic = total - best;
    (first_traffic, optimal_traffic)
}

/// One point of Fig. 5: mean normalized traffic for both policies at a
/// given access count.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    pub accesses: usize,
    /// Normalized traffic, first-HMC policy.
    pub first: f64,
    /// Normalized traffic, optimal policy.
    pub optimal: f64,
}

impl Fig5Point {
    /// Relative traffic increase of the cheap policy over optimal.
    pub fn overhead(&self) -> f64 {
        if self.optimal == 0.0 {
            0.0
        } else {
            self.first / self.optimal - 1.0
        }
    }
}

/// Sweep the number of memory accesses per block (the x-axis of Fig. 5).
pub fn sweep(hmcs: usize, max_accesses: usize, trials: u64, seed: u64) -> Vec<Fig5Point> {
    (1..=max_accesses)
        .map(|n| {
            let mut f = 0u64;
            let mut o = 0u64;
            for t in 0..trials {
                let s = splitmix64(seed ^ t.wrapping_mul(0x9E37_79B9));
                let (ft, ot) = one_instance(s ^ n as u64, n, hmcs);
                f += ft;
                o += ot;
            }
            let norm = (trials * n as u64) as f64;
            Fig5Point {
                accesses: n,
                first: f as f64 / norm,
                optimal: o as f64 / norm,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_is_always_local() {
        let pts = sweep(8, 1, 2000, 7);
        assert_eq!(pts[0].first, 0.0);
        assert_eq!(pts[0].optimal, 0.0);
    }

    #[test]
    fn first_policy_never_beats_optimal() {
        for p in sweep(8, 40, 500, 11) {
            assert!(
                p.first >= p.optimal - 1e-12,
                "n={}: first {} < optimal {}",
                p.accesses,
                p.first,
                p.optimal
            );
        }
    }

    #[test]
    fn overhead_is_bounded_and_shrinks() {
        // Paper: choosing the first HMC costs at most ~15% extra traffic,
        // and the gap diminishes with more accesses.
        let pts = sweep(8, 64, 2000, 13);
        let worst = pts
            .iter()
            .skip(4) // tiny n has degenerate ratios
            .map(|p| p.overhead())
            .fold(0.0f64, f64::max);
        assert!(worst < 0.25, "worst overhead {worst}");
        let early = pts[7].overhead();
        let late = pts[60].overhead();
        assert!(late < early, "gap must diminish: {early} → {late}");
        assert!(late < 0.10, "large-n overhead {late}");
    }

    #[test]
    fn traffic_approaches_seven_eighths() {
        // With 8 stacks and many accesses, ~7/8 of data is remote.
        let pts = sweep(8, 64, 2000, 17);
        let p = pts[63];
        assert!((p.first - 0.875).abs() < 0.02, "first = {}", p.first);
    }
}
