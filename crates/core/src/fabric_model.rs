//! Pass 2 of the `ndp-lint` verification suite: lift the const fabric
//! [`PIPELINE`](crate::system) into a static
//! [`FabricGraph`](ndp_common::analysis::FabricGraph) and check it.
//!
//! The lifted graph is *derived from the same constants the simulator
//! executes*: the node set mirrors the components `System` wires together,
//! each `Op::Route` stage in the pipeline contributes its edge(s), the
//! credit-release site is present exactly when the pipeline contains the
//! `SideChannel::Credits` stage, and pool capacities come from the live
//! `SystemConfig`. Dropping a pipeline stage or misrouting a packet kind
//! therefore shows up as a named [`GraphDiag`] before a single cycle runs.
//!
//! What each edge may carry and what each node consumes is written down
//! here as kind masks, checked against `Packet::KIND_NAMES` order by the
//! tests below. This is the one deliberate redundancy of the model — the
//! masks are the *specification* the routing table is diffed against, so
//! they must not be computed from the routing code itself.

use ndp_common::analysis::{
    kind_bit, CreditPoolSpec, FabricGraph, FootprintSpec, GraphEdge, GraphNode, KindMask,
    SharedResourceSpec, SkipSpec, WakeSourceSpec,
};
use ndp_common::config::SystemConfig;
use ndp_common::footprint::{res, Footprint};
use ndp_common::port::{Op, Stage};

use crate::system::{Comp, SideChannel, System, Tx};

/// Kind indices in [`Packet::KIND_NAMES`] order (guarded by a test).
const READ_REQ: usize = 0;
const READ_RESP: usize = 1;
const WRITE_REQ: usize = 2;
const WRITE_ACK: usize = 3;
const OFFLOAD_CMD: usize = 4;
const RDF: usize = 5;
const RDF_RESP: usize = 6;
const WTA: usize = 7;
const NSU_WRITE: usize = 8;
const NSU_WRITE_ACK: usize = 9;
const CACHE_INVAL: usize = 10;
const OFFLOAD_ACK: usize = 11;

/// Everything an SM (or the L2's SM side) sends toward memory: demand
/// reads/writes plus the NDP protocol's GPU→NSU packets (§4.1).
const GPU_UP: KindMask = kind_bit(READ_REQ)
    | kind_bit(WRITE_REQ)
    | kind_bit(OFFLOAD_CMD)
    | kind_bit(RDF)
    | kind_bit(RDF_RESP)
    | kind_bit(WTA);

/// Stack → GPU return traffic over the down links.
const GPU_DOWN: KindMask =
    kind_bit(READ_RESP) | kind_bit(WRITE_ACK) | kind_bit(CACHE_INVAL) | kind_bit(OFFLOAD_ACK);

/// Inter-stack traffic on the memory network (RDF forwards and the NSU
/// remote-write protocol).
const MEMNET: KindMask = kind_bit(RDF_RESP) | kind_bit(NSU_WRITE) | kind_bit(NSU_WRITE_ACK);

/// Stack → local NSU deliveries.
const TO_NSU: KindMask = kind_bit(OFFLOAD_CMD)
    | kind_bit(RDF)
    | kind_bit(RDF_RESP)
    | kind_bit(WTA)
    | kind_bit(NSU_WRITE_ACK);

/// The credit acquire site: the SM reserves NSU buffer entries at
/// `OFLD.BEG` issue, before the CMD packet enters the fabric (§4.3).
pub const ACQUIRE_SITE: &str = "sm:ofld_beg";
/// The credit release site: the `SideChannel::Credits` pipeline stage
/// drains NSU releases back to the GPU's buffer manager.
pub const RELEASE_SITE: &str = "side:credits";

/// The static node set of the machine, with what each node *originates*
/// (emits as new packets) and what it *terminally consumes*. Forwarded
/// kinds are neither: they appear on the in- and out-edges only.
fn nodes() -> Vec<GraphNode> {
    vec![
        GraphNode {
            name: "sm",
            emits: GPU_UP,
            consumes: kind_bit(READ_RESP) | kind_bit(OFFLOAD_ACK),
        },
        GraphNode {
            name: "l2_slice",
            // Hits answer reads; RDF hits synthesize the response the
            // vault would have produced (§4.2).
            emits: kind_bit(READ_RESP) | kind_bit(RDF_RESP),
            // Write-through acks and §4.1 invalidations die at the slice.
            consumes: kind_bit(WRITE_ACK) | kind_bit(CACHE_INVAL),
        },
        GraphNode {
            name: "up_link",
            emits: 0,
            consumes: 0,
        },
        GraphNode {
            name: "stack",
            emits: kind_bit(READ_RESP)
                | kind_bit(WRITE_ACK)
                | kind_bit(RDF_RESP)
                | kind_bit(NSU_WRITE_ACK)
                | kind_bit(CACHE_INVAL),
            consumes: kind_bit(READ_REQ)
                | kind_bit(WRITE_REQ)
                | kind_bit(RDF)
                | kind_bit(NSU_WRITE),
        },
        GraphNode {
            name: "memnet",
            emits: 0,
            consumes: 0,
        },
        GraphNode {
            name: "nsu",
            emits: kind_bit(NSU_WRITE) | kind_bit(OFFLOAD_ACK),
            consumes: TO_NSU,
        },
        GraphNode {
            name: "down_link",
            emits: 0,
            consumes: 0,
        },
    ]
}

/// The edge(s) one `Op::Route` pipeline stage contributes to the graph.
///
/// `Tx::DownLink` fans out by destination (L2 slices vs. SMs), so it lifts
/// to two graph edges with disjoint kind masks. `bounded` mirrors
/// `FabricCtx::can_accept`: true exactly for the receivers with a finite
/// acceptance bound (slice SM-side input, links, memnet injection).
/// `credit_protected` marks the one edge whose receiver occupancy is
/// governed by the §4.3 reservation protocol instead of backpressure.
fn edges_of(tx: Tx) -> Vec<GraphEdge> {
    let e = |name, from, to, kinds, bounded, credit_protected| GraphEdge {
        name,
        from,
        to,
        kinds,
        bounded,
        credit_protected,
    };
    match tx {
        Tx::SmOut => vec![e("sm_out", "sm", "l2_slice", GPU_UP, true, false)],
        Tx::SliceToMem => vec![e(
            "slice_to_mem",
            "l2_slice",
            "up_link",
            GPU_UP,
            true,
            false,
        )],
        Tx::UpLink => vec![e("up_link", "up_link", "stack", GPU_UP, false, false)],
        Tx::StackToMemnet => vec![e("stack_to_memnet", "stack", "memnet", MEMNET, true, false)],
        Tx::StackToNsu => vec![e("stack_to_nsu", "stack", "nsu", TO_NSU, false, true)],
        Tx::StackToGpu => vec![e(
            "stack_to_gpu",
            "stack",
            "down_link",
            GPU_DOWN,
            true,
            false,
        )],
        Tx::NetDelivered => vec![e("net_delivered", "memnet", "stack", MEMNET, false, false)],
        Tx::NsuOut => vec![e(
            "nsu_out",
            "nsu",
            "stack",
            kind_bit(NSU_WRITE) | kind_bit(OFFLOAD_ACK),
            false,
            false,
        )],
        Tx::DownLink => vec![
            e(
                "down_link",
                "down_link",
                "l2_slice",
                kind_bit(READ_RESP) | kind_bit(WRITE_ACK) | kind_bit(CACHE_INVAL),
                false,
                false,
            ),
            e(
                "down_link_to_sm",
                "down_link",
                "sm",
                kind_bit(OFFLOAD_ACK),
                false,
                false,
            ),
        ],
        Tx::SliceToSm => vec![e(
            "slice_to_sm",
            "l2_slice",
            "sm",
            kind_bit(READ_RESP),
            false,
            false,
        )],
    }
}

/// The quiescence contract of one `Op::Tick` stage (DESIGN.md §12): which
/// node it advances and which in-edges its `stage_horizon` accounting
/// watches for new arrivals. `check_quiescence` diffs the watch list
/// against the lifted edge set — an in-edge missing here means a packet
/// could be delivered to a sleeping component and never wake it.
fn skip_spec_of(c: Comp) -> SkipSpec {
    let (stage, node, watches) = match c {
        Comp::Sms => ("tick:sms", "sm", vec!["down_link_to_sm", "slice_to_sm"]),
        Comp::Slices => ("tick:slices", "l2_slice", vec!["sm_out", "down_link"]),
        Comp::UpLinks => ("tick:uplinks", "up_link", vec!["slice_to_mem"]),
        Comp::Stacks => (
            "tick:stacks",
            "stack",
            vec!["up_link", "net_delivered", "nsu_out"],
        ),
        Comp::Net => ("tick:net", "memnet", vec!["stack_to_memnet"]),
        Comp::Nsus => ("tick:nsus", "nsu", vec!["stack_to_nsu"]),
        Comp::DownLinks => ("tick:downlinks", "down_link", vec!["stack_to_gpu"]),
    };
    // Internal wake sources the stage's horizon observes, mirrored from the
    // components' WAKE_SOURCES consts (diffed against the registry by
    // check_quiescence, so a drift in either direction is a lint error).
    let wakes = match c {
        Comp::Sms => ndp_gpu::Sm::WAKE_SOURCES.to_vec(),
        Comp::Stacks => ndp_hmc::HmcStack::WAKE_SOURCES.to_vec(),
        _ => vec![],
    };
    // Mirrors the NDP_PARALLEL path in System::tick_comp: only the stack
    // and NSU member loops run on scoped threads. check_parallel_safety
    // holds these stages to a write-free footprint.
    let parallel = matches!(c, Comp::Stacks | Comp::Nsus);
    SkipSpec {
        stage,
        node,
        watches,
        wakes,
        parallel,
    }
}

/// The shared-mutable-resource registry of the machine: the offload
/// controller's state (exported as `OffloadController::RESOURCES` next to
/// the code that touches it) plus the diagnostics services every tick may
/// reach. Footprint declarations must draw from this closed universe.
fn shared_resources() -> Vec<SharedResourceSpec> {
    let mut v: Vec<SharedResourceSpec> = crate::offload::OffloadController::RESOURCES
        .iter()
        .map(|&(name, note)| SharedResourceSpec {
            name,
            owner: "ctrl",
            note,
        })
        .collect();
    // Diagnostics services owned by the fabric owner. Components reach
    // them only through messages or owner-drained queues today, so no
    // footprint declares them — registered so a future direct access has
    // a name to be declared (and detected) under.
    v.push(SharedResourceSpec {
        name: res::OBS_EVENT_RING,
        owner: "system",
        note: "observability event ring (append-only event log)",
    });
    v.push(SharedResourceSpec {
        name: res::FAULT_RNG,
        owner: "system",
        note: "fault-injector RNG stream (draws are order-dependent)",
    });
    v.push(SharedResourceSpec {
        name: res::WATCHDOG_PROGRESS,
        owner: "system",
        note: "forward-progress watchdog counters",
    });
    v
}

/// The footprint registry: each tick-stage component class exports a
/// `FOOTPRINT` const next to its tick code; lifting pulls those consts
/// here so the parallel-safety pass (and the `NDP_RACE` detector, which
/// is built from this same list) sees the *implementation's* declaration,
/// not a copy.
pub(crate) fn footprints() -> Vec<(&'static str, Footprint)> {
    vec![
        ("sm", ndp_gpu::Sm::FOOTPRINT),
        ("l2_slice", ndp_gpu::L2Slice::FOOTPRINT),
        ("up_link", ndp_common::link::Link::FOOTPRINT),
        ("stack", ndp_hmc::HmcStack::FOOTPRINT),
        ("memnet", ndp_memnet::MemNetwork::FOOTPRINT),
        ("nsu", ndp_nsu::Nsu::FOOTPRINT),
        ("down_link", ndp_common::link::Link::FOOTPRINT),
    ]
}

/// The wake-source registry of the machine: each component class that
/// maintains internal deferred-work structures exports them as a
/// `WAKE_SOURCES` const next to the code that updates them; lifting pulls
/// those consts here so the quiescence pass sees the *implementation's*
/// list, not a copy.
fn wake_sources() -> Vec<WakeSourceSpec> {
    let mut v = Vec::new();
    for name in ndp_gpu::Sm::WAKE_SOURCES {
        v.push(WakeSourceSpec { node: "sm", name });
    }
    for name in ndp_hmc::HmcStack::WAKE_SOURCES {
        v.push(WakeSourceSpec {
            node: "stack",
            name,
        });
    }
    v
}

/// Lift an arbitrary stage list. Separated from [`fabric_graph`] so tests
/// can lift mutated pipelines.
fn lift(cfg: &SystemConfig, stages: &[Stage<System>]) -> FabricGraph {
    let mut g = FabricGraph {
        nodes: nodes(),
        wake_sources: wake_sources(),
        resources: shared_resources(),
        footprints: footprints()
            .into_iter()
            .map(|(node, fp)| FootprintSpec {
                node,
                reads: fp.reads.to_vec(),
                writes: fp.writes.to_vec(),
            })
            .collect(),
        ..Default::default()
    };
    // The acquire side of the reservation protocol is SM issue logic, not
    // a pipeline stage; it exists whenever the machine does.
    g.sites.push(ACQUIRE_SITE);
    for st in stages {
        match &st.op {
            Op::Tick(c) => g.skip_specs.push(skip_spec_of(*c)),
            Op::Route(e) => g.edges.extend(edges_of(e.tx)),
            Op::Side(SideChannel::Credits) => g.sites.push(RELEASE_SITE),
            Op::Side(_) => {}
        }
    }
    for (name, capacity) in [
        ("nsu_cmd", cfg.nsu.cmd_entries),
        ("nsu_read_data", cfg.nsu.read_data_entries),
        ("nsu_write_addr", cfg.nsu.write_addr_entries),
    ] {
        g.pools.push(CreditPoolSpec {
            name: name.to_string(),
            capacity,
            acquire: ACQUIRE_SITE,
            release: RELEASE_SITE,
        });
    }
    g
}

/// The static graph of the machine `System::with_kernel` would build for
/// `cfg`, lifted from the executable `PIPELINE` constant.
pub fn fabric_graph(cfg: &SystemConfig) -> FabricGraph {
    lift(cfg, crate::system::PIPELINE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_common::port::Edge as PortEdge;
    use ndp_common::port::Op as PortOp;
    use ndp_common::Packet;

    #[test]
    fn kind_indices_match_packet_kind_names() {
        for (idx, want) in [
            (READ_REQ, "ReadReq"),
            (READ_RESP, "ReadResp"),
            (WRITE_REQ, "WriteReq"),
            (WRITE_ACK, "WriteAck"),
            (OFFLOAD_CMD, "OffloadCmd"),
            (RDF, "Rdf"),
            (RDF_RESP, "RdfResp"),
            (WTA, "Wta"),
            (NSU_WRITE, "NsuWrite"),
            (NSU_WRITE_ACK, "NsuWriteAck"),
            (CACHE_INVAL, "CacheInval"),
            (OFFLOAD_ACK, "OffloadAck"),
        ] {
            assert_eq!(Packet::KIND_NAMES[idx], want, "kind index {idx} drifted");
        }
    }

    #[test]
    fn lifted_pipeline_is_clean_for_every_preset() {
        for (name, cfg) in [
            ("baseline", SystemConfig::baseline()),
            ("naive_ndp", SystemConfig::naive_ndp()),
            ("ndp_static", SystemConfig::ndp_static(0.5)),
            ("ndp_dynamic", SystemConfig::ndp_dynamic()),
            ("ndp_dynamic_cache", SystemConfig::ndp_dynamic_cache()),
        ] {
            let diags = fabric_graph(&cfg).check();
            assert!(diags.is_empty(), "{name}: {:?}", diags);
        }
    }

    #[test]
    fn every_tx_edge_appears_in_the_lifted_graph() {
        let g = fabric_graph(&SystemConfig::baseline());
        for name in Tx::NAMES {
            assert!(
                g.edges.iter().any(|e| e.name == name),
                "pipeline edge {name} missing from lifted graph"
            );
        }
        // Plus the destination-split half of the down link.
        assert!(g.edges.iter().any(|e| e.name == "down_link_to_sm"));
    }

    #[test]
    fn dropping_the_nsu_edge_breaks_routing() {
        let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
        assert!(g.remove_edge("stack_to_nsu"));
        let diags = g.check();
        assert!(
            diags
                .iter()
                .any(|d| d.check == "routing" && d.detail.contains("OffloadCmd")),
            "{diags:?}"
        );
    }

    #[test]
    fn every_tick_stage_has_a_skip_spec_with_perf_aligned_name() {
        let g = fabric_graph(&SystemConfig::ndp_dynamic());
        let names = crate::system::stage_names();
        let ticks: Vec<_> = names.iter().filter(|n| n.starts_with("tick:")).collect();
        assert_eq!(
            g.skip_specs.len(),
            ticks.len(),
            "one quiescence spec per tick stage"
        );
        for spec in &g.skip_specs {
            assert!(
                ticks.iter().any(|n| n.as_str() == spec.stage),
                "spec stage {:?} is not a perf tick label",
                spec.stage
            );
        }
    }

    #[test]
    fn forgetting_an_in_edge_watch_is_a_quiescence_bug() {
        // A stack that doesn't watch the up link would sleep through GPU
        // demand traffic arriving while it is quiescent.
        let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
        assert!(g.remove_watch("tick:stacks", "up_link"));
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "quiescence"
                && d.detail.contains("tick:stacks")
                && d.detail.contains("up_link")),
            "{diags:?}"
        );
    }

    #[test]
    fn dropping_a_wake_wheel_declaration_is_caught_by_name() {
        // Simulates an SM horizon that stopped observing the wake-wheel:
        // the registry (lifted from Sm::WAKE_SOURCES) still lists it, so
        // the quiescence pass must flag the blind spot by name.
        let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
        assert!(g.remove_wake("tick:sms", "sm:wake_wheel"));
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "quiescence"
                && d.detail.contains("tick:sms")
                && d.detail.contains("sm:wake_wheel")),
            "{diags:?}"
        );
    }

    #[test]
    fn stack_wake_sources_are_registered_and_declared() {
        let g = fabric_graph(&SystemConfig::ndp_dynamic());
        let spec = g
            .skip_specs
            .iter()
            .find(|s| s.stage == "tick:stacks")
            .expect("stacks spec");
        for name in ndp_hmc::HmcStack::WAKE_SOURCES {
            assert!(spec.wakes.contains(name), "missing {name}");
            assert!(
                g.wake_sources
                    .iter()
                    .any(|s| s.node == "stack" && s.name == *name),
                "unregistered {name}"
            );
        }
    }

    #[test]
    fn every_tick_stage_member_declares_a_footprint() {
        let g = fabric_graph(&SystemConfig::ndp_dynamic());
        for spec in &g.skip_specs {
            assert!(
                g.footprints.iter().any(|f| f.node == spec.node),
                "no footprint for {:?} (stage {:?})",
                spec.node,
                spec.stage
            );
        }
        // And every declared resource is registered (closed universe).
        assert!(g.check().is_empty());
    }

    #[test]
    fn parallel_stages_are_exactly_the_ndp_parallel_leg_and_write_free() {
        // The static model must mirror the runtime: only the stack and
        // NSU member loops run on threads, and both are certified
        // conflict-free (empty footprints) by construction.
        let g = fabric_graph(&SystemConfig::ndp_dynamic());
        let parallel: Vec<_> = g
            .skip_specs
            .iter()
            .filter(|s| s.parallel)
            .map(|s| s.stage)
            .collect();
        assert_eq!(parallel, vec!["tick:stacks", "tick:nsus"]);
        for node in ["stack", "nsu"] {
            let fp = g.footprints.iter().find(|f| f.node == node).unwrap();
            assert!(fp.reads.is_empty() && fp.writes.is_empty(), "{node}");
        }
    }

    #[test]
    fn dropping_the_sm_footprint_is_caught_by_name() {
        // Simulates an SM class that stopped declaring its controller
        // footprint: the parallel-safety pass loses sight of exactly the
        // accesses that keep tick:sms sequential, so it must flag the
        // member by name.
        let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
        assert!(g.remove_footprint("sm"));
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "footprint"
                && d.detail.contains("\"sm\"")
                && d.detail.contains("tick:sms")),
            "{diags:?}"
        );
    }

    #[test]
    fn a_shared_write_on_the_parallel_leg_is_flagged() {
        // If a stack ever grew a controller write, NDP_PARALLEL would
        // race; the lint must refuse the graph before the runtime can.
        let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
        g.footprints
            .iter_mut()
            .find(|f| f.node == "stack")
            .unwrap()
            .writes
            .push(ndp_common::footprint::res::CTRL_CREDITS);
        let diags = g.check();
        assert!(
            diags.iter().any(|d| d.check == "parallel-safety"
                && d.detail.contains("tick:stacks")
                && d.detail.contains("ctrl.credits")),
            "{diags:?}"
        );
    }

    #[test]
    fn conflict_report_names_the_sm_blockers() {
        // The committed results/parallel_footprint.txt deliverable: the
        // report must pinpoint the controller fields that serialize
        // tick:sms and certify the threaded stages.
        let g = fabric_graph(&SystemConfig::ndp_dynamic());
        let report = g.footprint_report();
        for needle in [
            "tick:sms [sequential]",
            "blocked by shared writes:",
            "ctrl.credits",
            "ctrl.decisions",
            "ctrl.hill_climb",
            "tick:stacks [parallel (NDP_PARALLEL)]",
            "parallel-safe (certified: no shared writes)",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn dropping_the_credit_stage_is_an_unpaired_pool() {
        let cfg = SystemConfig::ndp_dynamic();
        let no_credits: Vec<Stage<System>> = crate::system::PIPELINE
            .iter()
            .filter(|s| !matches!(s.op, PortOp::Side(SideChannel::Credits)))
            .map(|s| Stage {
                gate: s.gate,
                op: match &s.op {
                    PortOp::Tick(c) => PortOp::Tick(*c),
                    PortOp::Route(e) => PortOp::Route(PortEdge {
                        tx: e.tx,
                        site: e.site,
                    }),
                    PortOp::Side(s) => PortOp::Side(*s),
                },
            })
            .collect();
        let diags = lift(&cfg, &no_credits).check();
        assert!(
            diags
                .iter()
                .any(|d| d.check == "credit" && d.detail.contains("side:credits")),
            "{diags:?}"
        );
    }
}
