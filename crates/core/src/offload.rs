//! Offload decision logic (§6–§7).
//!
//! Implements the [`ndp_gpu::NdpEnv`] trait for the system: per-instance
//! offload decisions under the five policies, NSU-buffer credit reservation
//! (§4.3), per-block cache-behaviour statistics, and the epoch-based
//! hill-climbing controller of Algorithm 1.

use ndp_common::config::{HillClimbConfig, OffloadPolicy, SystemConfig};
use ndp_common::ids::{Cycle, HmcId};
use ndp_common::rng::unit_sample;
use ndp_gpu::{BufferManager, NdpEnv};
use ndp_isa::offload::OffloadBlock;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Per-block runtime statistics feeding the §7.3 locality gate.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockStats {
    /// Cache lines touched by the block's loads (RDF packets generated, or
    /// their would-be count when running on the GPU).
    pub lines: u64,
    /// How many of those hit in the L1.
    pub l1_hits: u64,
    /// How many hit in an L2 slice.
    pub l2_hits: u64,
    /// Completed instances.
    pub instances: u64,
    /// Dynamic instructions retired inside the block (both modes).
    pub instrs: u64,
}

impl BlockStats {
    pub fn hit_rate(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            (self.l1_hits + self.l2_hits) as f64 / self.lines as f64
        }
    }

    pub fn lines_per_instance(&self) -> f64 {
        if self.instances == 0 {
            0.0
        } else {
            self.lines as f64 / self.instances as f64
        }
    }
}

/// Hill-climbing state (Algorithm 1).
#[derive(Debug, Clone)]
struct HillClimb {
    cfg: HillClimbConfig,
    ratio: f64,
    step: f64,
    dir: f64,
    prev_ipc: Option<f64>,
    dir_change_history: VecDeque<bool>,
    next_epoch_end: Cycle,
    epoch_instrs: u64,
}

impl HillClimb {
    fn new(cfg: HillClimbConfig) -> Self {
        HillClimb {
            ratio: cfg.initial_ratio,
            step: cfg.initial_step,
            dir: 1.0,
            prev_ipc: None,
            dir_change_history: VecDeque::new(),
            next_epoch_end: cfg.epoch_cycles,
            epoch_instrs: 0,
            cfg,
        }
    }

    /// Algorithm 1, executed at each epoch boundary.
    fn epoch_end(&mut self) {
        let cur = self.epoch_instrs as f64 / self.cfg.epoch_cycles as f64;
        self.epoch_instrs = 0;
        let Some(prev) = self.prev_ipc else {
            self.prev_ipc = Some(cur);
            return;
        };
        if cur < prev {
            self.dir = -self.dir; // reverse direction if getting worse
            self.dir_change_history.push_back(true);
        } else {
            self.dir_change_history.push_back(false);
        }
        if self.dir_change_history.len() > self.cfg.window {
            self.dir_change_history.pop_front();
        }
        let n_changes = self.dir_change_history.iter().filter(|c| **c).count();
        if n_changes > self.cfg.window / 2 && self.cfg.step_min < self.step {
            self.step -= self.cfg.step_unit;
        } else if self.step < self.cfg.step_max {
            self.step += self.cfg.step_unit;
        }
        if self.cfg.step_unit <= self.ratio && self.ratio <= 1.0 - self.cfg.step_unit {
            self.ratio += self.dir * self.step;
        }
        self.ratio = self
            .ratio
            .clamp(self.cfg.step_unit, 1.0 - self.cfg.step_unit);
        self.prev_ipc = Some(cur);
    }
}

/// The system-level offload controller.
pub struct OffloadController {
    policy: OffloadPolicy,
    pub mgr: BufferManager,
    blocks: Arc<Vec<OffloadBlock>>,
    pub block_stats: Vec<BlockStats>,
    hc: HillClimb,
    seed: u64,
    decisions: u64,
    /// Total offloaded / total instances (for reports).
    pub offered: u64,
    pub offloaded: u64,
    line_bytes: f64,
    warp_width: f64,
    word_bytes: f64,
    /// In-flight WTA line counters per destination stack (§4.1 dynamic
    /// memory management: a page swap into stack *h* must wait until
    /// `wta_inflight[h] == 0`).
    pub wta_inflight: Vec<u64>,
    /// §7.1 extension: per-NSU read-only cache directory (lines already
    /// shipped), with FIFO replacement. Empty capacity disables it.
    ro_cache_lines: usize,
    ro_cache: Vec<(HashSet<u64>, VecDeque<u64>)>,
    /// NSU buffer capacities: a block needing more read-data / write-address
    /// entries than exist can never reserve and must run on the GPU.
    read_capacity: usize,
    write_capacity: usize,
    /// `NDP_RACE=1` access recorder, shared with `System` (which brackets
    /// the member loops). `None` when disarmed — the recording hooks then
    /// cost one branch and touch nothing. Deliberately *not* part of the
    /// checkpoint image: detector state is diagnostics, not model state.
    race: Option<Arc<ndp_common::footprint::RaceDetector>>,
    /// Test hook: when set, `decide_offload` also records an access to a
    /// resource no footprint declares, so the `NDP_RACE` run must fail
    /// with `UndeclaredAccess` naming it (`tests/static_verify.rs`).
    shadow_access: bool,
}

impl OffloadController {
    pub fn new(cfg: &SystemConfig, blocks: Arc<Vec<OffloadBlock>>) -> Self {
        let n = blocks.len();
        OffloadController {
            policy: cfg.offload,
            mgr: BufferManager::new(cfg),
            block_stats: vec![BlockStats::default(); n],
            hc: HillClimb::new(cfg.hill_climb),
            seed: cfg.seed,
            decisions: 0,
            offered: 0,
            offloaded: 0,
            line_bytes: cfg.gpu.line_bytes as f64,
            warp_width: cfg.gpu.warp_width as f64,
            word_bytes: 4.0,
            wta_inflight: vec![0; cfg.hmc.num_hmcs],
            ro_cache_lines: cfg.nsu.readonly_cache_bytes / cfg.gpu.line_bytes,
            ro_cache: (0..cfg.hmc.num_hmcs)
                .map(|_| (HashSet::new(), VecDeque::new()))
                .collect(),
            read_capacity: cfg.nsu.read_data_entries,
            write_capacity: cfg.nsu.write_addr_entries,
            blocks,
            race: None,
            shadow_access: false,
        }
    }

    /// The controller's shared mutable resources, named for footprint
    /// declarations and the conflict report. Kept next to the state
    /// itself so the registry cannot drift from the struct: every field a
    /// component can reach through [`NdpEnv`] (or `note_l2_event`) has
    /// exactly one entry here, and the recording hooks below use the same
    /// `res::*` constants.
    pub const RESOURCES: &'static [(&'static str, &'static str)] = &[
        (
            ndp_common::footprint::res::CTRL_CREDITS,
            "NSU buffer-credit pools (BufferManager reservations)",
        ),
        (
            ndp_common::footprint::res::CTRL_DECISIONS,
            "offload decision stream: offered/offloaded counters + deterministic sampler",
        ),
        (
            ndp_common::footprint::res::CTRL_BLOCK_STATS,
            "per-block cache-behaviour statistics (locality gate input)",
        ),
        (
            ndp_common::footprint::res::CTRL_HILL_CLIMB,
            "Algorithm-1 hill-climb state: ratio + epoch instruction counter",
        ),
        (
            ndp_common::footprint::res::CTRL_WTA_INFLIGHT,
            "in-flight WTA line counters per stack (page-remap gate)",
        ),
        (
            ndp_common::footprint::res::CTRL_RO_CACHE,
            "per-NSU read-only cache directories (FIFO)",
        ),
    ];

    /// Arm (or disarm) the `NDP_RACE` access recorder. Called by `System`
    /// with its own detector handle so both sides see one epoch stream.
    pub fn set_race(&mut self, race: Option<Arc<ndp_common::footprint::RaceDetector>>) {
        self.race = race;
    }

    /// Test hook: make `decide_offload` additionally touch a shared
    /// resource outside every declared footprint.
    #[doc(hidden)]
    pub fn debug_record_undeclared(&mut self, on: bool) {
        self.shadow_access = on;
    }

    /// Record one declared-resource access when the detector is armed.
    /// Disarmed cost: a single `None` branch.
    fn rec(&self, resource: &'static str, access: ndp_common::footprint::Access) {
        if let Some(r) = &self.race {
            r.record(resource, access);
        }
    }

    /// Can this block ever fit the NSU buffers? (§4.3: a reservation larger
    /// than the buffer is unsatisfiable — the block must stay on the GPU.)
    fn fits_buffers(&self, block: u16) -> bool {
        let b = &self.blocks[block as usize];
        b.n_loads() <= self.read_capacity && b.n_stores() <= self.write_capacity
    }

    /// §4.1: may a new page be mapped into stack `hmc` right now? (All
    /// in-flight write addresses to that stack must have drained.)
    pub fn page_remap_safe(&self, hmc: HmcId) -> bool {
        self.wta_inflight[hmc.0 as usize] == 0
    }

    /// A cache-invalidation packet from stack `hmc` arrived at the GPU —
    /// one WTA's DRAM write completed. Returns `false` for an *orphan*
    /// invalidation (no matching in-flight WTA), which the caller reports
    /// to the invariant engine instead of silently tolerating.
    #[must_use]
    pub fn note_inval(&mut self, hmc: HmcId) -> bool {
        let c = &mut self.wta_inflight[hmc.0 as usize];
        let matched = *c > 0;
        *c = c.saturating_sub(1);
        matched
    }

    /// Called by the system once per cycle.
    pub fn on_cycle(&mut self, now: Cycle) {
        if matches!(
            self.policy,
            OffloadPolicy::Dynamic | OffloadPolicy::DynamicCacheAware
        ) && now >= self.hc.next_epoch_end
        {
            self.hc.epoch_end();
            self.hc.next_epoch_end = now + self.hc.cfg.epoch_cycles;
        }
    }

    /// Next cycle at which [`Self::on_cycle`] has real work: the upcoming
    /// epoch boundary for the dynamic policies, `None` for static policies
    /// (whose `on_cycle` is a pure no-op — quiescence horizon of the ctrl
    /// side-channel stage).
    pub fn next_epoch_at(&self) -> Option<Cycle> {
        match self.policy {
            OffloadPolicy::Dynamic | OffloadPolicy::DynamicCacheAware => {
                Some(self.hc.next_epoch_end)
            }
            _ => None,
        }
    }

    /// Current offload ratio (1.0 for Always, 0.0 for Never).
    pub fn current_ratio(&self) -> f64 {
        match self.policy {
            OffloadPolicy::Never => 0.0,
            OffloadPolicy::Always => 1.0,
            OffloadPolicy::Static(r) => r,
            OffloadPolicy::Dynamic | OffloadPolicy::DynamicCacheAware => self.hc.ratio,
        }
    }

    /// §7.3 cache-locality score of a block, in bytes of GPU off-chip
    /// traffic saved per warp instance. Positive ⇒ offloading helps.
    ///
    /// Net-traffic form of the paper's Benefit: missing lines offloaded are
    /// GPU-link bytes *saved* (they travel vault→NSU over the memory
    /// network), store data words are saved likewise (write-through cache,
    /// §7.3), while cache-*hitting* lines become bytes *spent* — an RDF hit
    /// ships the cached words GPU→NSU off-chip (§4.1), which is exactly why
    /// cache-friendly blocks (STN, the BPROP structure) lose. Register
    /// transfers charge per Eq. 1. See DESIGN.md for the delta vs. the
    /// paper's stated formula.
    pub fn locality_score(&self, block: u16) -> f64 {
        let s = &self.block_stats[block as usize];
        let b = &self.blocks[block as usize];
        if s.instances < 8 {
            return 1.0; // insufficient data: allow offloading to learn
        }
        let hit = s.hit_rate();
        let miss = 1.0 - hit;
        let lines = s.lines_per_instance();
        // Average words per line access: 32 for dense streams, ~1 for
        // divergent gathers (whose RDF responses only carry touched words).
        let words_per_line = if lines > 0.0 {
            (b.n_loads() as f64 * self.warp_width) / lines
        } else {
            self.warp_width
        };
        let benefit = lines * miss * self.line_bytes
            + b.n_stores() as f64 * self.warp_width * self.word_bytes;
        let hit_ship = lines * hit * words_per_line * self.word_bytes;
        let reg_overhead =
            (b.live_in.len() + b.live_out.len()) as f64 * self.word_bytes * self.warp_width;
        benefit - hit_ship - reg_overhead
    }

    /// Test/diagnostic hooks.
    #[doc(hidden)]
    pub fn debug_set_epoch_instrs(&mut self, n: u64) {
        self.hc.epoch_instrs = n;
    }

    #[doc(hidden)]
    pub fn debug_step(&self) -> f64 {
        self.hc.step
    }

    fn sample(&mut self, sm: u16, ratio: f64) -> bool {
        self.decisions += 1;
        unit_sample(self.seed, sm as u64, self.decisions) < ratio
    }

    /// Checkpoint the credit manager, per-block stats, hill-climb state
    /// (floats transported bit-exact), the decision counter that drives the
    /// deterministic sampling stream, WTA in-flight counters and the
    /// read-only-cache directories (FIFO order is authoritative; the hash
    /// sets are rebuilt from it). Policy/capacities are config-derived.
    pub fn snap(&self, w: &mut ndp_common::snap::SnapWriter) {
        self.mgr.snap(w);
        w.len(self.block_stats.len());
        for s in &self.block_stats {
            w.u64(s.lines);
            w.u64(s.l1_hits);
            w.u64(s.l2_hits);
            w.u64(s.instances);
            w.u64(s.instrs);
        }
        w.f64(self.hc.ratio);
        w.f64(self.hc.step);
        w.f64(self.hc.dir);
        w.bool(self.hc.prev_ipc.is_some());
        w.f64(self.hc.prev_ipc.unwrap_or(0.0));
        w.len(self.hc.dir_change_history.len());
        for c in &self.hc.dir_change_history {
            w.bool(*c);
        }
        w.u64(self.hc.next_epoch_end);
        w.u64(self.hc.epoch_instrs);
        w.u64(self.decisions);
        w.u64(self.offered);
        w.u64(self.offloaded);
        w.len(self.wta_inflight.len());
        for c in &self.wta_inflight {
            w.u64(*c);
        }
        w.len(self.ro_cache.len());
        for (_, order) in &self.ro_cache {
            w.len(order.len());
            for line in order {
                w.u64(*line);
            }
        }
    }

    /// Overwrite from a checkpoint stream; `self` must be freshly built
    /// against the same config and kernel (vector shapes are validated).
    pub fn restore(
        &mut self,
        r: &mut ndp_common::snap::SnapReader<'_>,
    ) -> Result<(), ndp_common::snap::SnapError> {
        self.mgr.restore(r)?;
        let nb = r.len()?;
        if nb != self.block_stats.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "controller tracks {} blocks, checkpoint has {nb}",
                self.block_stats.len()
            )));
        }
        for s in &mut self.block_stats {
            s.lines = r.u64()?;
            s.l1_hits = r.u64()?;
            s.l2_hits = r.u64()?;
            s.instances = r.u64()?;
            s.instrs = r.u64()?;
        }
        self.hc.ratio = r.f64()?;
        self.hc.step = r.f64()?;
        self.hc.dir = r.f64()?;
        let has_prev = r.bool()?;
        let prev = r.f64()?;
        self.hc.prev_ipc = has_prev.then_some(prev);
        self.hc.dir_change_history.clear();
        for _ in 0..r.len()? {
            let c = r.bool()?;
            self.hc.dir_change_history.push_back(c);
        }
        self.hc.next_epoch_end = r.u64()?;
        self.hc.epoch_instrs = r.u64()?;
        self.decisions = r.u64()?;
        self.offered = r.u64()?;
        self.offloaded = r.u64()?;
        let nw = r.len()?;
        if nw != self.wta_inflight.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "controller tracks {} WTA counters, checkpoint has {nw}",
                self.wta_inflight.len()
            )));
        }
        for c in &mut self.wta_inflight {
            *c = r.u64()?;
        }
        let nc = r.len()?;
        if nc != self.ro_cache.len() {
            return Err(ndp_common::snap::SnapError(format!(
                "controller tracks {} ro-cache directories, checkpoint has {nc}",
                self.ro_cache.len()
            )));
        }
        for (set, order) in &mut self.ro_cache {
            set.clear();
            order.clear();
            for _ in 0..r.len()? {
                let line = r.u64()?;
                set.insert(line);
                order.push_back(line);
            }
        }
        Ok(())
    }
}

impl NdpEnv for OffloadController {
    fn decide_offload(&mut self, sm: u16, block: u16) -> bool {
        use ndp_common::footprint::{res, Access};
        // The decision stream (offered/offloaded + sampler) advances on
        // every call, and the dynamic policies read the hill-climb ratio:
        // exactly the order-dependence that keeps tick:sms sequential.
        self.rec(res::CTRL_DECISIONS, Access::Write);
        match self.policy {
            OffloadPolicy::Dynamic | OffloadPolicy::DynamicCacheAware => {
                self.rec(res::CTRL_HILL_CLIMB, Access::Read);
            }
            _ => {}
        }
        if let OffloadPolicy::DynamicCacheAware = self.policy {
            self.rec(res::CTRL_BLOCK_STATS, Access::Read);
        }
        if self.shadow_access {
            self.rec("ctrl.shadow", Access::Write);
        }
        self.offered += 1;
        if !self.fits_buffers(block) {
            return false;
        }
        let go = match self.policy {
            OffloadPolicy::Never => false,
            OffloadPolicy::Always => true,
            OffloadPolicy::Static(r) => self.sample(sm, r),
            OffloadPolicy::Dynamic => {
                let r = self.hc.ratio;
                self.sample(sm, r)
            }
            OffloadPolicy::DynamicCacheAware => {
                if self.locality_score(block) <= 0.0 {
                    false
                } else {
                    let r = self.hc.ratio;
                    self.sample(sm, r)
                }
            }
        };
        if go {
            self.offloaded += 1;
        }
        go
    }

    fn try_reserve(&mut self, hmc: HmcId, n_loads: usize, n_stores: usize) -> bool {
        self.rec(
            ndp_common::footprint::res::CTRL_CREDITS,
            ndp_common::footprint::Access::Write,
        );
        self.mgr.try_reserve(hmc, n_loads, n_stores)
    }

    fn note_block_lines(&mut self, block: u16, lines: u32, l1_hits: u32) {
        self.rec(
            ndp_common::footprint::res::CTRL_BLOCK_STATS,
            ndp_common::footprint::Access::Write,
        );
        let s = &mut self.block_stats[block as usize];
        s.lines += lines as u64;
        s.l1_hits += l1_hits as u64;
    }

    fn note_block_done(&mut self, block: u16, instrs: u32) {
        self.rec(
            ndp_common::footprint::res::CTRL_BLOCK_STATS,
            ndp_common::footprint::Access::Write,
        );
        self.rec(
            ndp_common::footprint::res::CTRL_HILL_CLIMB,
            ndp_common::footprint::Access::Write,
        );
        let s = &mut self.block_stats[block as usize];
        s.instances += 1;
        s.instrs += instrs as u64;
        self.hc.epoch_instrs += instrs as u64;
    }

    fn note_wta_line(&mut self, hmc: HmcId) {
        self.rec(
            ndp_common::footprint::res::CTRL_WTA_INFLIGHT,
            ndp_common::footprint::Access::Write,
        );
        self.wta_inflight[hmc.0 as usize] += 1;
    }

    fn nsu_ro_cached(&mut self, nsu: HmcId, line: u64) -> bool {
        self.rec(
            ndp_common::footprint::res::CTRL_RO_CACHE,
            ndp_common::footprint::Access::Write,
        );
        if self.ro_cache_lines == 0 {
            return false;
        }
        let (set, order) = &mut self.ro_cache[nsu.0 as usize];
        if set.contains(&line) {
            return true;
        }
        set.insert(line);
        order.push_back(line);
        if order.len() > self.ro_cache_lines {
            if let Some(evicted) = order.pop_front() {
                set.remove(&evicted);
            }
        }
        false
    }
}

impl OffloadController {
    /// L2-level hit/miss samples reported by the uncore.
    pub fn note_l2_event(&mut self, block: u16, hit: bool) {
        self.rec(
            ndp_common::footprint::res::CTRL_BLOCK_STATS,
            ndp_common::footprint::Access::Write,
        );
        if hit {
            self.block_stats[block as usize].l2_hits += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_isa::offload::{InstrRole, NsuInstr};
    use ndp_isa::Reg;

    fn blocks() -> Arc<Vec<OffloadBlock>> {
        Arc::new(vec![OffloadBlock {
            id: 0,
            start: 0,
            end: 3,
            roles: vec![InstrRole::Load, InstrRole::AtNsu, InstrRole::Store],
            live_in: vec![],
            live_out: vec![],
            nsu_code: vec![
                NsuInstr::Begin { regs_in: 0 },
                NsuInstr::Ld { dst: Reg(0) },
                NsuInstr::St { src: Reg(0) },
                NsuInstr::End { regs_out: 0 },
            ],
            nsu_pc: 0xd00,
            score: 1,
            indirect: false,
        }])
    }

    fn ctl(policy: OffloadPolicy) -> OffloadController {
        let cfg = SystemConfig {
            offload: policy,
            ..Default::default()
        };
        OffloadController::new(&cfg, blocks())
    }

    #[test]
    fn never_and_always() {
        let mut c = ctl(OffloadPolicy::Never);
        assert!(!c.decide_offload(0, 0));
        let mut c = ctl(OffloadPolicy::Always);
        assert!(c.decide_offload(0, 0));
    }

    #[test]
    fn static_ratio_statistics() {
        let mut c = ctl(OffloadPolicy::Static(0.4));
        let n = 10_000;
        let yes = (0..n).filter(|_| c.decide_offload(3, 0)).count();
        let frac = yes as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.03, "observed {frac}");
    }

    #[test]
    fn hill_climb_moves_toward_better_throughput() {
        let mut c = ctl(OffloadPolicy::Dynamic);
        let epoch = c.hc.cfg.epoch_cycles;
        let r0 = c.current_ratio();
        // Feed epochs where throughput keeps rising: ratio should keep
        // moving in one direction.
        for e in 1..=6u64 {
            c.hc.epoch_instrs = 1000 * e;
            c.on_cycle(e * epoch);
        }
        let r1 = c.current_ratio();
        assert!(r1 > r0, "ratio should grow: {r0} → {r1}");
    }

    #[test]
    fn hill_climb_reverses_and_shrinks_step_on_oscillation() {
        let mut c = ctl(OffloadPolicy::Dynamic);
        let epoch = c.hc.cfg.epoch_cycles;
        // Monotonically degrading epochs: every epoch is worse than the
        // last and the direction flips each time. Algorithm 1 then drives
        // the step down to hover at the minimum (it bounces between
        // Step_min and Step_min + Step_unit by construction of the
        // if/else in the paper's listing).
        let start_step = c.hc.step;
        for e in 1..=12u64 {
            c.hc.epoch_instrs = 20_000 / e;
            c.on_cycle(e * epoch);
        }
        assert!(
            c.hc.step <= c.hc.cfg.step_min + c.hc.cfg.step_unit + 1e-9,
            "step = {}",
            c.hc.step
        );
        assert!(c.hc.step < start_step + 1e-9);
    }

    #[test]
    fn ratio_stays_in_bounds() {
        let mut c = ctl(OffloadPolicy::Dynamic);
        let epoch = c.hc.cfg.epoch_cycles;
        for e in 1..=50u64 {
            c.hc.epoch_instrs = 1000 * e; // monotone improvement
            c.on_cycle(e * epoch);
        }
        assert!(c.current_ratio() <= 0.95 + 1e-9);
        let mut c = ctl(OffloadPolicy::Dynamic);
        for e in 1..=50u64 {
            c.hc.epoch_instrs = 100_000 / e; // monotone degradation
            c.on_cycle(e * epoch);
        }
        assert!(c.current_ratio() >= 0.05 - 1e-9);
    }

    #[test]
    fn gate_suppresses_cache_friendly_blocks() {
        // A dense loads-only block (the STN regime: each load = 1 line,
        // full warp per line) whose lines mostly hit in the GPU caches:
        // shipping the cached words off-chip outweighs the miss savings.
        let mut c = ctl_loads_only(OffloadPolicy::DynamicCacheAware);
        for _ in 0..100 {
            c.note_block_done(0, 3);
        }
        c.note_block_lines(0, 200, 128); // 2 lines/instance, 64% hit
        assert!(c.locality_score(0) <= 0.0, "score {}", c.locality_score(0));
        assert!(!c.decide_offload(0, 0));
    }

    fn ctl_loads_only(policy: OffloadPolicy) -> OffloadController {
        let cfg = SystemConfig {
            offload: policy,
            ..Default::default()
        };
        let b = Arc::new(vec![OffloadBlock {
            id: 0,
            start: 0,
            end: 3,
            roles: vec![InstrRole::Load, InstrRole::Load, InstrRole::AtNsu],
            live_in: vec![],
            live_out: vec![],
            nsu_code: vec![
                NsuInstr::Begin { regs_in: 0 },
                NsuInstr::Ld { dst: Reg(0) },
                NsuInstr::Ld { dst: Reg(1) },
                NsuInstr::End { regs_out: 0 },
            ],
            nsu_pc: 0xd00,
            score: 1,
            indirect: false,
        }]);
        OffloadController::new(&cfg, b)
    }

    #[test]
    fn gate_allows_streaming_blocks() {
        let mut c = ctl_loads_only(OffloadPolicy::DynamicCacheAware);
        for _ in 0..100 {
            c.note_block_done(0, 3);
        }
        c.note_block_lines(0, 200, 4);
        assert!(c.locality_score(0) > 0.0);
    }

    #[test]
    fn gate_allows_divergent_gathers_even_with_hits() {
        // 32 lines per instance, 1 word each (BFS-style gather): even at a
        // 50% hit rate the misses dominate because hit shipping is 4 B/line
        // while each missing line saves 128 B of baseline fetch.
        let mut c = ctl_loads_only(OffloadPolicy::DynamicCacheAware);
        for _ in 0..100 {
            c.note_block_done(0, 1);
        }
        c.note_block_lines(0, 6400, 3200);
        assert!(c.locality_score(0) > 0.0);
    }

    #[test]
    fn ro_cache_directory_hits_after_first_ship() {
        let mut cfg = SystemConfig {
            offload: OffloadPolicy::Always,
            ..Default::default()
        };
        cfg.nsu.readonly_cache_bytes = 256; // two lines
        let mut c = OffloadController::new(&cfg, blocks());
        assert!(!c.nsu_ro_cached(HmcId(0), 0x1000), "first touch ships data");
        assert!(c.nsu_ro_cached(HmcId(0), 0x1000), "second touch is cached");
        assert!(!c.nsu_ro_cached(HmcId(1), 0x1000), "per-NSU directories");
        // FIFO eviction at two lines.
        assert!(!c.nsu_ro_cached(HmcId(0), 0x2000));
        assert!(!c.nsu_ro_cached(HmcId(0), 0x3000)); // evicts 0x1000
        assert!(!c.nsu_ro_cached(HmcId(0), 0x1000), "evicted line re-ships");
    }

    #[test]
    fn ro_cache_disabled_by_default() {
        let mut c = ctl(OffloadPolicy::Always);
        assert!(!c.nsu_ro_cached(HmcId(0), 0x1000));
        assert!(!c.nsu_ro_cached(HmcId(0), 0x1000), "stays off");
    }

    #[test]
    fn wta_counters_track_inflight_writes() {
        let mut c = ctl(OffloadPolicy::Always);
        assert!(c.page_remap_safe(HmcId(3)));
        c.note_wta_line(HmcId(3));
        c.note_wta_line(HmcId(3));
        c.note_wta_line(HmcId(5));
        assert!(!c.page_remap_safe(HmcId(3)));
        assert!(!c.page_remap_safe(HmcId(5)));
        assert!(c.page_remap_safe(HmcId(0)), "other stacks unaffected");
        assert!(c.note_inval(HmcId(3)));
        assert!(!c.page_remap_safe(HmcId(3)));
        assert!(c.note_inval(HmcId(3)));
        assert!(c.note_inval(HmcId(5)));
        assert!(!c.note_inval(HmcId(5)), "orphan inval reported");
        assert!(c.page_remap_safe(HmcId(3)));
        assert!(c.page_remap_safe(HmcId(5)));
    }

    #[test]
    fn gate_learns_before_judging() {
        let c = ctl(OffloadPolicy::DynamicCacheAware);
        assert!(c.locality_score(0) > 0.0, "no data yet ⇒ allow");
    }
}
