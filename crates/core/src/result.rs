//! Simulation results: everything the figure drivers need.

use ndp_common::fault::FaultStats;
use ndp_common::obs::perf::PerfReport;
use ndp_common::obs::ObsReport;
use ndp_common::stats::{CacheStats, DramStats, IssueStats};
use ndp_common::watchdog::StallReport;
use ndp_energy::{Activity, EnergyBreakdown, EnergyParams};
use serde::Serialize;

/// Aggregated outcome of one simulation run.
#[derive(Clone, Default, PartialEq, Serialize)]
pub struct RunResult {
    pub workload: String,
    pub config: String,
    /// Total SM cycles simulated.
    pub cycles: u64,
    /// True if the run hit the safety cycle cap instead of draining.
    pub timed_out: bool,
    pub issue: IssueStats,
    pub l1: CacheStats,
    pub l2: CacheStats,
    pub dram: DramStats,
    /// GPU↔HMC link traffic (both directions).
    pub gpu_link_bytes: u64,
    /// NDP-protocol bytes on the GPU links.
    pub gpu_link_ndp_bytes: u64,
    /// Cache-invalidation bytes on the GPU links (§4.2 overhead).
    pub inval_bytes: u64,
    /// Memory-network traffic.
    pub memnet_bytes: u64,
    /// Logic-layer crossbar traffic.
    pub intra_hmc_bytes: u64,
    /// GPU on-die interconnect traffic.
    pub ondie_bytes: u64,
    /// Warp instructions executed on NSUs.
    pub nsu_instrs: u64,
    /// Block instances offered / offloaded.
    pub offered: u64,
    pub offloaded: u64,
    /// Average NSU warp occupancy in `[0,1]` (Fig. 11).
    pub nsu_occupancy: f64,
    /// NSU I-cache utilization in `[0,1]` (Fig. 11).
    pub nsu_icache_util: f64,
    /// Peak per-SM pending/ready buffer use (§7.5).
    pub sm_buffer_peaks: (usize, usize),
    /// Pieces for the energy model.
    pub activity: Activity,
    /// Observability report (latency histograms, occupancy time-series,
    /// protocol events) — `Some` only when observability was enabled.
    pub obs: Option<ObsReport>,
    /// Simulator self-profile (per-stage wall-time/idle attribution,
    /// throughput heartbeats) — `Some` only when `NDP_PERF` profiling was
    /// enabled. Never rendered by `Debug`: wall times are host-dependent,
    /// and golden byte comparisons must hold with profiling on.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub perf: Option<PerfReport>,
    /// Structured stall diagnosis — `Some` only when the forward-progress
    /// watchdog aborted the run.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub stall: Option<Box<StallReport>>,
    /// Injected-fault occurrence counts — `Some` only when the fault
    /// injector was armed for the run.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultStats>,
}

/// Hand-rolled so `stall` and `faults` appear only when present:
/// golden-file `{:#?}` dumps of clean runs stay byte-identical to the
/// pre-watchdog format.
impl std::fmt::Debug for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("RunResult");
        d.field("workload", &self.workload)
            .field("config", &self.config)
            .field("cycles", &self.cycles)
            .field("timed_out", &self.timed_out)
            .field("issue", &self.issue)
            .field("l1", &self.l1)
            .field("l2", &self.l2)
            .field("dram", &self.dram)
            .field("gpu_link_bytes", &self.gpu_link_bytes)
            .field("gpu_link_ndp_bytes", &self.gpu_link_ndp_bytes)
            .field("inval_bytes", &self.inval_bytes)
            .field("memnet_bytes", &self.memnet_bytes)
            .field("intra_hmc_bytes", &self.intra_hmc_bytes)
            .field("ondie_bytes", &self.ondie_bytes)
            .field("nsu_instrs", &self.nsu_instrs)
            .field("offered", &self.offered)
            .field("offloaded", &self.offloaded)
            .field("nsu_occupancy", &self.nsu_occupancy)
            .field("nsu_icache_util", &self.nsu_icache_util)
            .field("sm_buffer_peaks", &self.sm_buffer_peaks)
            .field("activity", &self.activity)
            .field("obs", &self.obs);
        if let Some(stall) = &self.stall {
            d.field("stall", stall);
        }
        if let Some(faults) = &self.faults {
            d.field("faults", faults);
        }
        d.finish()
    }
}

impl RunResult {
    /// Speedup of this run relative to a baseline run.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Invalidation traffic as a fraction of total GPU-link traffic (§4.2).
    pub fn inval_fraction(&self) -> f64 {
        if self.gpu_link_bytes == 0 {
            0.0
        } else {
            self.inval_bytes as f64 / self.gpu_link_bytes as f64
        }
    }

    /// Energy under the given parameters.
    pub fn energy(&self, params: &EnergyParams) -> EnergyBreakdown {
        ndp_energy::energy(params, &self.activity)
    }

    /// Effective offload ratio achieved.
    pub fn offload_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.offloaded as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let a = RunResult {
            cycles: 200,
            ..Default::default()
        };
        let mut b = RunResult {
            cycles: 100,
            ..Default::default()
        };
        assert_eq!(b.speedup_over(&a), 2.0);
        b.gpu_link_bytes = 1000;
        b.inval_bytes = 4;
        assert!((b.inval_fraction() - 0.004).abs() < 1e-12);
        b.offered = 10;
        b.offloaded = 4;
        assert!((b.offload_fraction() - 0.4).abs() < 1e-12);
    }
}
