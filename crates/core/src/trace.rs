//! Lightweight packet tracing for protocol walkthroughs (Fig. 2).
//!
//! When enabled, the system records packet movements at its routing points
//! (bounded ring); the `trace_fig2` example replays the life of one
//! offload-block instance as the paper's ①–⑨ message sequence.

use ndp_common::ids::{Cycle, Node, OffloadToken};
use ndp_common::packet::{Packet, PacketKind};

/// Where in the system a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSite {
    /// Ejected from an SM into the on-die interconnect.
    SmEject,
    /// Delivered up a GPU link into a stack's logic layer.
    GpuLinkUp,
    /// Handed from a stack's logic layer to its NSU.
    ToNsu,
    /// Emitted by an NSU back into its stack.
    FromNsu,
    /// Delivered down a GPU link to the GPU.
    GpuLinkDown,
}

impl TraceSite {
    pub fn name(&self) -> &'static str {
        match self {
            TraceSite::SmEject => "SM→icnt",
            TraceSite::GpuLinkUp => "link↑→HMC",
            TraceSite::ToNsu => "xbar→NSU",
            TraceSite::FromNsu => "NSU→xbar",
            TraceSite::GpuLinkDown => "link↓→GPU",
        }
    }
}

/// One observed packet movement.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub cycle: Cycle,
    pub site: TraceSite,
    pub src: Node,
    pub dst: Node,
    pub size: u32,
    pub kind: &'static str,
    /// Offload token, for NDP-protocol packets.
    pub token: Option<OffloadToken>,
}

/// Bounded event recorder (disabled ⇒ zero overhead beyond a branch).
#[derive(Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    limit: usize,
}

impl Tracer {
    pub fn disabled() -> Self {
        Tracer::default()
    }

    pub fn enabled(limit: usize) -> Self {
        Tracer {
            events: Vec::with_capacity(limit.min(4096)),
            limit,
        }
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.limit > 0 && self.events.len() < self.limit
    }

    #[inline]
    pub fn record(&mut self, cycle: Cycle, site: TraceSite, p: &Packet) {
        if !self.is_on() {
            return;
        }
        self.events.push(TraceEvent {
            cycle,
            site,
            src: p.src,
            dst: p.dst,
            size: p.size,
            kind: Packet::KIND_NAMES[p.kind_index()],
            token: token_of(p),
        });
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All events belonging to one offload-block instance, in order.
    pub fn instance(&self, token: OffloadToken) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.token == Some(token))
            .collect()
    }

    /// The first offload token observed, if any.
    pub fn first_token(&self) -> Option<OffloadToken> {
        self.events.iter().find_map(|e| e.token)
    }

    /// Render an instance's message flow in the style of Fig. 2(b).
    pub fn render_instance(&self, token: OffloadToken) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "offload instance {:?} — partitioned-execution message flow (Fig. 2(b)):\n",
            token
        ));
        for (i, e) in self.instance(token).iter().enumerate() {
            out.push_str(&format!(
                "  {:>2}. cycle {:>6}  {:<11} {:<12} {:?} → {:?}  ({} B)\n",
                i + 1,
                e.cycle,
                e.site.name(),
                e.kind,
                e.src,
                e.dst,
                e.size
            ));
        }
        out
    }
}

fn token_of(p: &Packet) -> Option<OffloadToken> {
    match p.kind {
        PacketKind::OffloadCmd { token, .. }
        | PacketKind::Rdf { token, .. }
        | PacketKind::RdfResp { token, .. }
        | PacketKind::Wta { token, .. }
        | PacketKind::NsuWrite { token, .. }
        | PacketKind::NsuWriteAck { token }
        | PacketKind::OffloadAck { token, .. } => Some(token),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(kind: PacketKind) -> Packet {
        Packet::new(Node::Sm(0), Node::Nsu(1), 5, kind)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(
            1,
            TraceSite::SmEject,
            &pkt(PacketKind::CacheInval { addr: 0 }),
        );
        assert!(t.events().is_empty());
        assert!(!t.is_on());
    }

    #[test]
    fn limit_caps_recording() {
        let mut t = Tracer::enabled(2);
        for i in 0..5 {
            t.record(
                i,
                TraceSite::SmEject,
                &pkt(PacketKind::CacheInval { addr: 0 }),
            );
        }
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn instance_filter_and_render() {
        let mut t = Tracer::enabled(100);
        let tok = OffloadToken(42);
        t.record(
            1,
            TraceSite::SmEject,
            &pkt(PacketKind::OffloadCmd {
                token: tok,
                id: ndp_common::ids::OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                nsu_pc: 0xd00,
                regs_in: 0,
                active: 32,
                mask: u32::MAX,
                n_loads: 1,
                n_stores: 1,
            }),
        );
        t.record(
            2,
            TraceSite::SmEject,
            &pkt(PacketKind::CacheInval { addr: 0 }), // no token
        );
        t.record(
            9,
            TraceSite::GpuLinkDown,
            &pkt(PacketKind::OffloadAck {
                token: tok,
                id: ndp_common::ids::OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                regs_out: 0,
                active: 32,
                values: vec![],
            }),
        );
        assert_eq!(t.first_token(), Some(tok));
        assert_eq!(t.instance(tok).len(), 2);
        let text = t.render_instance(tok);
        assert!(text.contains("OffloadCmd"), "{text}");
        assert!(text.contains("OffloadAck"), "{text}");
        assert!(!text.contains("CacheInval"), "{text}");
    }
}
