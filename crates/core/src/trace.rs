//! Lightweight packet tracing for protocol walkthroughs (Fig. 2).
//!
//! The recording machinery lives in [`ndp_common::obs`] — the same
//! [`EventRing`] that backs the Chrome-trace exporter. This module keeps the
//! `Tracer` facade (enable/disable semantics the `trace_fig2` example uses)
//! and the Fig. 2(b)-style textual rendering of one offload instance.

use ndp_common::ids::OffloadToken;
pub use ndp_common::obs::{EventRing, TraceEvent, TraceSite};

/// Bounded event recorder (disabled ⇒ zero overhead beyond a branch).
///
/// A thin wrapper over [`EventRing`] adding instance rendering; the ring
/// itself is shared with the observability layer so Fig.-2 tracing and
/// Chrome-trace export go through one recording path.
#[derive(Debug, Default)]
pub struct Tracer {
    ring: EventRing,
}

impl Tracer {
    pub fn disabled() -> Self {
        Tracer::default()
    }

    pub fn enabled(limit: usize) -> Self {
        Tracer {
            ring: EventRing::with_limit(limit),
        }
    }

    #[inline]
    pub fn is_on(&self) -> bool {
        self.ring.is_on()
    }

    #[inline]
    pub fn record(
        &mut self,
        cycle: ndp_common::ids::Cycle,
        site: TraceSite,
        p: &ndp_common::packet::Packet,
    ) {
        self.ring.record(cycle, site, p);
    }

    pub fn events(&self) -> &[TraceEvent] {
        self.ring.events()
    }

    /// All events belonging to one offload-block instance, in order.
    pub fn instance(&self, token: OffloadToken) -> Vec<&TraceEvent> {
        self.ring.instance(token)
    }

    /// The first offload token observed, if any.
    pub fn first_token(&self) -> Option<OffloadToken> {
        self.ring.first_token()
    }

    /// Render an instance's message flow in the style of Fig. 2(b).
    pub fn render_instance(&self, token: OffloadToken) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "offload instance {:?} — partitioned-execution message flow (Fig. 2(b)):\n",
            token
        ));
        for (i, e) in self.instance(token).iter().enumerate() {
            out.push_str(&format!(
                "  {:>2}. cycle {:>6}  {:<11} {:<12} {:?} → {:?}  ({} B)\n",
                i + 1,
                e.cycle,
                e.site.name(),
                e.kind,
                e.src,
                e.dst,
                e.size
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_common::ids::Node;
    use ndp_common::packet::{Packet, PacketKind};

    fn pkt(kind: PacketKind) -> Packet {
        Packet::new(Node::Sm(0), Node::Nsu(1), 5, kind)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(
            1,
            TraceSite::SmEject,
            &pkt(PacketKind::CacheInval { addr: 0 }),
        );
        assert!(t.events().is_empty());
        assert!(!t.is_on());
    }

    #[test]
    fn limit_caps_recording() {
        let mut t = Tracer::enabled(2);
        for i in 0..5 {
            t.record(
                i,
                TraceSite::SmEject,
                &pkt(PacketKind::CacheInval { addr: 0 }),
            );
        }
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn instance_filter_and_render() {
        let mut t = Tracer::enabled(100);
        let tok = OffloadToken(42);
        t.record(
            1,
            TraceSite::SmEject,
            &pkt(PacketKind::OffloadCmd {
                token: tok,
                id: ndp_common::ids::OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                nsu_pc: 0xd00,
                regs_in: 0,
                active: 32,
                mask: u32::MAX,
                n_loads: 1,
                n_stores: 1,
            }),
        );
        t.record(
            2,
            TraceSite::SmEject,
            &pkt(PacketKind::CacheInval { addr: 0 }), // no token
        );
        t.record(
            9,
            TraceSite::GpuLinkDown,
            &pkt(PacketKind::OffloadAck {
                token: tok,
                id: ndp_common::ids::OffloadId {
                    sm: 0,
                    warp: 0,
                    seq: 0,
                },
                regs_out: 0,
                active: 32,
                values: vec![],
            }),
        );
        assert_eq!(t.first_token(), Some(tok));
        assert_eq!(t.instance(tok).len(), 2);
        let text = t.render_instance(tok);
        assert!(text.contains("OffloadCmd"), "{text}");
        assert!(text.contains("OffloadAck"), "{text}");
        assert!(!text.contains("CacheInval"), "{text}");
    }
}
