//! Integration test: the static analyzer reproduces Table 1 exactly for
//! every workload, through the public facade API.

use standardized_ndp::prelude::*;

#[test]
fn table1_block_sizes() {
    for w in WORKLOADS {
        let p = w.build(&Scale::tiny());
        let ck = compile(&p, &CompilerConfig::default());
        assert_eq!(
            ck.nsu_lens(),
            w.table1_sizes().to_vec(),
            "Table 1 mismatch for {}",
            w.name()
        );
    }
}

#[test]
fn table1_block_sizes_are_scale_invariant() {
    for w in WORKLOADS {
        let small = compile(&w.build(&Scale::tiny()), &CompilerConfig::default());
        let big = compile(
            &w.build(&Scale {
                warps: 2048,
                iters: 32,
            }),
            &CompilerConfig::default(),
        );
        assert_eq!(small.nsu_lens(), big.nsu_lens(), "{}", w.name());
    }
}

#[test]
fn register_transfers_match_papers_magnitude() {
    // §5: on average 0.41 regs sent / 0.47 received per thread.
    let mut regs_in = 0usize;
    let mut regs_out = 0usize;
    let mut blocks = 0usize;
    for w in WORKLOADS {
        let ck = compile(&w.build(&Scale::tiny()), &CompilerConfig::default());
        for b in &ck.blocks {
            regs_in += b.live_in.len();
            regs_out += b.live_out.len();
            blocks += 1;
        }
    }
    let avg_in = regs_in as f64 / blocks as f64;
    let avg_out = regs_out as f64 / blocks as f64;
    assert!(avg_in < 1.0, "avg regs in = {avg_in}");
    assert!(avg_out < 1.0, "avg regs out = {avg_out}");
}

#[test]
fn nsu_code_fits_the_icache() {
    // Fig. 11: the NSU's 4 KB I-cache is plenty for every workload's
    // translated blocks.
    for w in WORKLOADS {
        let ck = compile(&w.build(&Scale::tiny()), &CompilerConfig::default());
        assert!(
            ck.nsu_footprint_bytes() <= 4096,
            "{}: {} B of NSU code",
            w.name(),
            ck.nsu_footprint_bytes()
        );
    }
}
