//! Golden determinism test: a small fig7-scale sweep must produce exactly
//! the committed `RunResult`s, field for field.
//!
//! The simulator is a deterministic cycle-stepped model — same program,
//! same config, same outputs, on every host. This test pins that contract
//! so a refactor of the component wiring (or any "harmless" cleanup) cannot
//! silently change simulation outcomes. The golden file is the `{:#?}`
//! rendering of the results, which depends only on `std` Debug formatting.
//!
//! To re-bless after an *intentional* model change:
//!
//! ```text
//! NDP_BLESS=1 cargo test --test golden_determinism
//! git diff tests/golden/fig7_small.txt   # review before committing!
//! ```

use standardized_ndp::prelude::*;
use std::path::PathBuf;

const MAX: u64 = 30_000_000;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("fig7_small.txt")
}

/// The fig7 sweep at test scale: every config column of the speedup figure
/// over a workload sample that exercises GPU-side caching (Vadd), irregular
/// access (Bfs), and the offload protocol (Bprop).
fn sweep() -> String {
    let mut out = String::new();
    for (cname, cfg) in [
        ("baseline", SystemConfig::baseline()),
        ("naive_ndp", SystemConfig::naive_ndp()),
        ("ndp_dynamic_cache", SystemConfig::ndp_dynamic_cache()),
    ] {
        for w in [Workload::Vadd, Workload::Bfs, Workload::Bprop] {
            let mut cfg = cfg.clone();
            cfg.gpu.num_sms = 8;
            let p = w.build(&Scale {
                warps: 64,
                iters: 4,
            });
            let r = System::new(cfg, &p)
                .run(MAX)
                .expect("no protocol violation");
            assert!(!r.timed_out, "{cname}/{} timed out", w.name());
            out.push_str(&format!("=== {cname} / {} ===\n{r:#?}\n", w.name()));
        }
    }
    out
}

#[test]
fn fig7_small_matches_golden() {
    let got = sweep();
    let path = golden_path();
    if std::env::var_os("NDP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), got.len());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with NDP_BLESS=1 to create it",
            path.display()
        )
    });
    if got != want {
        // Find the first diverging line so the failure is readable without
        // dumping two multi-kilobyte blobs.
        let (mut line, mut a, mut b) = (0usize, "", "");
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                (line, a, b) = (i + 1, g, w);
                break;
            }
        }
        panic!(
            "simulation output diverged from golden {} at line {line}:\n  golden: {b}\n  got:    {a}\n\
             (total: {} golden lines, {} current lines)\n\
             If this change is intentional, re-bless with NDP_BLESS=1.",
            path.display(),
            want.lines().count(),
            got.lines().count(),
        );
    }
}

/// Same sweep twice in one process must agree with itself — catches any
/// accidental dependence on global state, iteration order, or time.
#[test]
fn fig7_small_is_self_deterministic() {
    assert_eq!(sweep(), sweep(), "back-to-back runs diverged");
}
