//! Differential equivalence for the event-driven core (DESIGN.md §12).
//!
//! Quiescence-aware stage skipping, next-event time jumps, and parallel
//! stack ticking are *execution strategies*, not model changes: a skipping
//! (or parallel) run must produce byte-for-byte the same `RunResult` as an
//! exhaustive per-cycle run — same cycle count, same stall statistics,
//! same byte totals, same fault outcomes. These tests pin that contract
//! across every workload, both bench scales, and a fault-injection seed.
//!
//! Modes are selected with [`System::set_skip`] / [`System::set_parallel`]
//! / [`System::set_race`] rather than `NDP_NO_SKIP` / `NDP_PARALLEL` /
//! `NDP_RACE`: env vars are process-global and tests run concurrently.

use standardized_ndp::prelude::*;

const MAX: u64 = 30_000_000;

#[derive(Clone, Copy)]
struct Mode {
    skip: bool,
    parallel: bool,
}

fn run_mode(cfg: &SystemConfig, w: Workload, scale: &Scale, num_sms: usize, m: Mode) -> RunResult {
    let mut cfg = cfg.clone();
    cfg.gpu.num_sms = num_sms;
    let p = w.build(scale);
    let mut sys = System::new(cfg, &p);
    sys.set_skip(m.skip);
    sys.set_parallel(m.parallel);
    let r = sys.run(MAX).expect("no protocol violation");
    assert!(!r.timed_out, "{} timed out", w.name());
    r
}

fn assert_equivalent(cfg: &SystemConfig, w: Workload, scale: &Scale, num_sms: usize, m: Mode) {
    let base = run_mode(
        cfg,
        w,
        scale,
        num_sms,
        Mode {
            skip: false,
            parallel: false,
        },
    );
    let alt = run_mode(cfg, w, scale, num_sms, m);
    assert_eq!(base.cycles, alt.cycles, "{}: cycle count drifted", w.name());
    assert_eq!(
        format!("{base:#?}"),
        format!("{alt:#?}"),
        "{}: RunResult diverged between per-cycle and event-driven execution",
        w.name()
    );
}

const SMALL: Scale = Scale {
    warps: 64,
    iters: 4,
};
const SCALE: Scale = Scale {
    warps: 256,
    iters: 8,
};

/// Every workload at the fig7-small scale: skipping on vs off must be
/// byte-identical under the NDP config that exercises the full machine
/// (NSU clock domain, offload protocol, memory network).
#[test]
fn skip_equivalence_all_workloads_small() {
    for w in WORKLOADS {
        assert_equivalent(
            &SystemConfig::ndp_dynamic_cache(),
            w,
            &SMALL,
            8,
            Mode {
                skip: true,
                parallel: false,
            },
        );
    }
}

/// Every workload at the fig7-scale scale (16 SMs, 256 warps × 8 iters):
/// the long-idle-span regime where next-event jumps actually fire.
#[test]
fn skip_equivalence_all_workloads_scale() {
    for w in WORKLOADS {
        assert_equivalent(
            &SystemConfig::ndp_dynamic_cache(),
            w,
            &SCALE,
            16,
            Mode {
                skip: true,
                parallel: false,
            },
        );
    }
}

/// The gated-forever path (baseline: NSU stages never open) and the
/// always-offload path must also be skip-invariant.
#[test]
fn skip_equivalence_other_configs() {
    for cfg in [SystemConfig::baseline(), SystemConfig::naive_ndp()] {
        for w in [Workload::Vadd, Workload::Bfs, Workload::Bprop] {
            assert_equivalent(
                &cfg,
                w,
                &SMALL,
                8,
                Mode {
                    skip: true,
                    parallel: false,
                },
            );
        }
    }
}

/// Parallel stack/NSU ticking (with skipping also on, the shipped
/// combination) must be byte-identical to the serial per-cycle run.
#[test]
fn parallel_equivalence() {
    for w in [Workload::Vadd, Workload::Bfs, Workload::Kmn] {
        assert_equivalent(
            &SystemConfig::ndp_dynamic_cache(),
            w,
            &SMALL,
            8,
            Mode {
                skip: true,
                parallel: true,
            },
        );
    }
}

/// The NDP_RACE leg of the matrix: every workload runs the shipped
/// parallel combination with the shared-state race detector armed. Three
/// contracts at once — (1) the detector is read-only (byte-identical
/// `RunResult` vs the plain per-cycle run), (2) the threaded stack/NSU
/// stages are race-free in practice (the run completes instead of
/// returning `SimError::DataRace`), and (3) the footprint declarations
/// are complete (no `UndeclaredAccess`, with the detector demonstrably
/// engaged on every workload).
#[test]
fn race_detector_parallel_equivalence_all_workloads() {
    for w in WORKLOADS {
        let base = run_mode(
            &SystemConfig::ndp_dynamic_cache(),
            w,
            &SMALL,
            8,
            Mode {
                skip: false,
                parallel: false,
            },
        );
        let mut cfg = SystemConfig::ndp_dynamic_cache();
        cfg.gpu.num_sms = 8;
        let p = w.build(&SMALL);
        let mut sys = System::new(cfg, &p);
        sys.set_skip(true);
        sys.set_parallel(true);
        sys.set_race(true);
        let race = sys.race_handle().expect("detector armed");
        let r = sys
            .run(MAX)
            .unwrap_or_else(|e| panic!("{}: race leg failed: {e}", w.name()));
        assert!(!r.timed_out, "{} timed out", w.name());
        assert_eq!(
            format!("{base:#?}"),
            format!("{r:#?}"),
            "{}: armed race detector changed simulation output",
            w.name()
        );
        let (accesses, _) = race.stats();
        assert!(accesses > 0, "{}: detector never engaged", w.name());
    }
}

/// Seeded fault injection replayed under both execution strategies: the
/// injector's decisions are pure functions of (seed, edge, packet), so the
/// exact same faults must fire whether cycles are ticked or jumped.
///
/// Two seeds: a delay-only schedule (protocol-transparent, the run drains
/// and the full `RunResult` including fault stats must be byte-identical)
/// and a drop/duplicate schedule (the protocol engine is *expected* to
/// object — but it must object identically in every mode).
#[test]
fn fault_seed_equivalence() {
    let outcome = |faults: FaultConfig, skip: bool, parallel: bool| {
        let mut cfg = SystemConfig::ndp_dynamic_cache();
        cfg.gpu.num_sms = 8;
        let p = Workload::Vadd.build(&SMALL);
        let mut sys = System::new(cfg, &p);
        sys.set_skip(skip);
        sys.set_parallel(parallel);
        sys.inject_faults(faults);
        match sys.run(MAX) {
            Ok(r) => format!("OK\n{r:#?}"),
            Err(e) => format!("ERR\n{e:?}"),
        }
    };

    let delays = FaultConfig {
        seed: 0xFEED_5EED,
        delay_prob: 0.02,
        delay_cycles: 64,
        ..Default::default()
    };
    let base = outcome(delays, false, false);
    assert!(
        base.starts_with("OK") && base.contains("delay_holds"),
        "delay-only schedule must drain cleanly with faults recorded"
    );
    let lossy = FaultConfig {
        seed: 3,
        drop_prob: 0.005,
        dup_prob: 0.005,
        ..Default::default()
    };
    let lossy_base = outcome(lossy, false, false);
    for (skip, parallel) in [(true, false), (true, true)] {
        assert_eq!(
            base,
            outcome(delays, skip, parallel),
            "delayed run diverged (skip={skip} parallel={parallel})"
        );
        assert_eq!(
            lossy_base,
            outcome(lossy, skip, parallel),
            "lossy run outcome diverged (skip={skip} parallel={parallel})"
        );
    }
}
