//! Mutation tests for the static verification suite (`ndp-lint`).
//!
//! Pass 1 and Pass 2 are only trustworthy if they actually *catch* broken
//! annotations — a verifier that accepts everything would pass every clean
//! check. So: take the real compiled workloads and the real lifted fabric
//! graph, corrupt one fact at a time (a live set, an instruction role, a
//! pipeline edge), and require a named diagnostic for each corruption —
//! plus a zero-diagnostic run over everything unmodified.

use std::sync::Arc;

use ndp_common::config::SystemConfig;
use ndp_common::SimError;
use ndp_compiler::{compile, CompiledKernel, CompilerConfig};
use ndp_core::{fabric_graph, System};
use ndp_isa::{verify_blocks, InstrRole, Reg};
use ndp_workloads::{Scale, Workload, WORKLOADS};

fn compiled(w: Workload) -> CompiledKernel {
    compile(&w.build(&Scale::tiny()), &CompilerConfig::default())
}

/// A workload with at least one offload block, plus the index of a block
/// with a nonempty role vector (all Table-1 kernels have one).
fn victim() -> CompiledKernel {
    let k = compiled(Workload::Vadd);
    assert!(!k.blocks.is_empty(), "VADD must have an offload block");
    k
}

// ---------------------------------------------------------------- clean run

#[test]
fn all_builtin_workloads_verify_clean() {
    for scale in [Scale::tiny(), Scale::default()] {
        for w in WORKLOADS {
            let k = compile(&w.build(&scale), &CompilerConfig::default());
            let diags = verify_blocks(&k.program, &k.blocks);
            assert!(diags.is_empty(), "{}: {diags:?}", w.name());
        }
    }
}

#[test]
fn all_config_presets_lift_to_clean_graphs() {
    for (name, cfg) in [
        ("baseline", SystemConfig::baseline()),
        ("baseline_more_core", SystemConfig::baseline_more_core()),
        ("naive_ndp", SystemConfig::naive_ndp()),
        ("ndp_static", SystemConfig::ndp_static(0.5)),
        ("ndp_dynamic", SystemConfig::ndp_dynamic()),
        ("ndp_dynamic_cache", SystemConfig::ndp_dynamic_cache()),
    ] {
        let diags = fabric_graph(&cfg).check();
        assert!(diags.is_empty(), "{name}: {diags:?}");
    }
}

// ------------------------------------------------- mutation: live sets

#[test]
fn corrupt_live_out_is_caught_with_location() {
    let mut k = victim();
    // R60 is defined nowhere in the tiny kernels: claiming it in the ACK
    // is pure wasted transfer and must be flagged.
    k.blocks[0].live_out.push(Reg(60));
    let diags = verify_blocks(&k.program, &k.blocks);
    let hit = diags
        .iter()
        .find(|d| d.detail.contains("live-out") && d.detail.contains("R60"))
        .unwrap_or_else(|| panic!("no live-out diagnostic in {diags:?}"));
    assert_eq!(hit.block, k.blocks[0].id, "diag names the mutated block");
}

#[test]
fn dropped_live_in_is_caught() {
    // Find any Table-1 block that transfers a GPU-computed value.
    let (mut k, bi) = WORKLOADS
        .iter()
        .map(|w| compiled(*w))
        .find_map(|k| {
            let bi = k.blocks.iter().position(|b| !b.live_in.is_empty())?;
            Some((k, bi))
        })
        .expect("some block has a live-in");
    let lost = k.blocks[bi].live_in.remove(0);
    let diags = verify_blocks(&k.program, &k.blocks);
    assert!(
        diags.iter().any(
            |d| d.detail.contains("live-in is missing") && d.detail.contains(&lost.to_string())
        ),
        "no missing-live-in diagnostic for {lost} in {diags:?}"
    );
}

// ------------------------------------------------- mutation: roles

#[test]
fn flipped_alu_role_is_caught() {
    let mut k = victim();
    let b = &mut k.blocks[0];
    // Flip one ALU role across the GPU/NSU split.
    let i = b
        .roles
        .iter()
        .position(|r| matches!(r, InstrRole::AtNsu | InstrRole::AddrCalc))
        .expect("block has an ALU instruction");
    b.roles[i] = match b.roles[i] {
        InstrRole::AtNsu => InstrRole::AddrCalc,
        _ => InstrRole::AtNsu,
    };
    let diags = verify_blocks(&k.program, &k.blocks);
    assert!(
        diags.iter().any(|d| d.detail.contains("role annotated")),
        "no role diagnostic in {diags:?}"
    );
}

#[test]
fn load_annotated_as_store_is_caught() {
    let mut k = victim();
    let b = &mut k.blocks[0];
    let i = b
        .roles
        .iter()
        .position(|r| matches!(r, InstrRole::Load))
        .expect("block has a load");
    b.roles[i] = InstrRole::Store;
    let diags = verify_blocks(&k.program, &k.blocks);
    assert!(
        diags
            .iter()
            .any(|d| d.detail.contains("misclassified across the RDF/WTA split")),
        "no RDF/WTA diagnostic in {diags:?}"
    );
}

// ------------------------------------------------- mutation: fabric graph

#[test]
fn dropped_pipeline_edge_is_caught_by_name() {
    let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
    assert!(g.remove_edge("stack_to_nsu"), "edge exists before removal");
    let diags = g.check();
    let hit = diags
        .iter()
        .find(|d| d.check == "routing")
        .unwrap_or_else(|| panic!("no routing diagnostic in {diags:?}"));
    assert!(
        hit.detail.contains("OffloadCmd"),
        "diag names the stranded packet kind: {hit}"
    );
}

#[test]
fn dropped_credit_release_site_is_caught() {
    let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
    assert!(g.remove_site("side:credits"));
    let diags = g.check();
    assert!(
        diags
            .iter()
            .any(|d| d.check == "credit" && d.detail.contains("side:credits")),
        "no credit-pairing diagnostic in {diags:?}"
    );
}

// ---------------------------------- mutation: shared-state footprints

#[test]
fn dropped_footprint_declaration_is_caught_by_member_name() {
    // An SM class that stopped declaring its controller footprint blinds
    // the parallel-safety pass to exactly the accesses that keep tick:sms
    // sequential — the lint must name the member and its stage.
    let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
    assert!(g.remove_footprint("sm"), "footprint exists before removal");
    let diags = g.check();
    assert!(
        diags.iter().any(|d| d.check == "footprint"
            && d.detail.contains("\"sm\"")
            && d.detail.contains("tick:sms")),
        "no footprint diagnostic in {diags:?}"
    );
}

#[test]
fn shared_write_on_the_parallel_leg_is_caught() {
    // If the threaded stack stage ever grew a shared write, the lint must
    // refuse the graph before the runtime can race.
    let mut g = fabric_graph(&SystemConfig::ndp_dynamic());
    g.footprints
        .iter_mut()
        .find(|f| f.node == "stack")
        .expect("stack declares a footprint")
        .writes
        .push("ctrl.credits");
    let diags = g.check();
    assert!(
        diags.iter().any(|d| d.check == "parallel-safety"
            && d.detail.contains("tick:stacks")
            && d.detail.contains("ctrl.credits")),
        "no parallel-safety diagnostic in {diags:?}"
    );
}

// ----------------------------- dynamic side: the NDP_RACE=1 detector

/// A small dynamic-policy system with the race detector armed (via the
/// setter — tests run concurrently, so the process-global `NDP_RACE`
/// environment variable is off limits here).
fn race_armed_system() -> System {
    let mut cfg = SystemConfig::ndp_dynamic();
    cfg.gpu.num_sms = 4;
    // Enough CTAs that several SMs drive the shared controller (tiny()
    // is a single CTA — one SM can't conflict with itself).
    let scale = Scale {
        warps: 64,
        iters: 4,
    };
    let mut sys = System::new(cfg, &Workload::Vadd.build(&scale));
    sys.set_race(true);
    sys
}

#[test]
fn undeclared_controller_access_is_caught_by_resource_name() {
    // Satellite check: an access the footprints don't declare must
    // surface as a typed UndeclaredAccess naming the resource — this is
    // what makes the static declarations trustworthy.
    let mut sys = race_armed_system();
    sys.ctrl.debug_record_undeclared(true);
    let err = sys
        .run(1_000_000)
        .expect_err("shadow access must fail the run");
    match &err {
        SimError::UndeclaredAccess {
            resource, accessor, ..
        } => {
            assert_eq!(resource, "ctrl.shadow");
            assert!(accessor.starts_with("sm["), "accessor: {accessor}");
        }
        other => panic!("expected UndeclaredAccess, got {other:?}"),
    }
    assert!(err.to_string().contains("outside its declared"));
}

#[test]
fn forced_parallel_sms_trip_a_data_race_on_the_controller() {
    // The deterministic demonstration of why tick:sms is serialized:
    // treat it as a run-spanning parallel region and the very first
    // cross-SM controller access pair becomes a typed DataRace.
    let mut sys = race_armed_system();
    sys.debug_force_race_parallel("tick:sms");
    let err = sys
        .run(1_000_000)
        .expect_err("cross-SM controller sharing must race");
    match &err {
        SimError::DataRace {
            stage,
            resource,
            first,
            second,
            ..
        } => {
            assert_eq!(*stage, "tick:sms");
            assert!(resource.starts_with("ctrl."), "resource: {resource}");
            assert!(first.starts_with("sm["), "first: {first}");
            assert!(second.starts_with("sm["), "second: {second}");
        }
        other => panic!("expected DataRace, got {other:?}"),
    }
}

#[test]
fn clean_run_with_detector_armed_records_and_passes() {
    // Sequential stages conflict without racing: the armed detector must
    // stay silent, while its stats prove it was engaged and show the
    // controller conflicts that block parallel tick:sms.
    let sys = race_armed_system();
    let race = sys.race_handle().expect("detector armed");
    let r = sys.run(1_000_000).expect("clean run");
    assert!(!r.timed_out);
    let (accesses, would_conflict) = race.stats();
    assert!(accesses > 0, "detector saw no accesses");
    assert!(
        would_conflict > 0,
        "VADD on 4 SMs must show cross-SM controller conflicts"
    );
    assert!(
        race.conflict_sites()
            .iter()
            .any(|(stage, res, _)| *stage == "tick:sms" && res.starts_with("ctrl.")),
        "conflict sites: {:?}",
        race.conflict_sites()
    );
}

// --------------------------------------- construction surfaces the findings

#[test]
fn system_construction_rejects_a_corrupted_kernel() {
    let mut k = victim();
    k.blocks[0].live_out.push(Reg(60));
    let mut cfg = SystemConfig::ndp_dynamic();
    cfg.gpu.num_sms = 4;
    let err = System::try_with_kernel(cfg, Arc::new(k))
        .err()
        .expect("try_with_kernel must reject the corrupted partition");
    match &err {
        SimError::BadPartition {
            kernel, location, ..
        } => {
            assert_eq!(kernel, "VADD");
            assert!(location.contains("block 0"), "location: {location}");
        }
        other => panic!("expected BadPartition, got {other:?}"),
    }
    assert!(err.to_string().contains("offload partition invalid"));
}

#[test]
fn system_construction_accepts_every_builtin() {
    let mut cfg = SystemConfig::ndp_dynamic();
    cfg.gpu.num_sms = 4;
    for w in WORKLOADS {
        let k = Arc::new(compiled(w));
        assert!(
            System::try_with_kernel(cfg.clone(), k).is_ok(),
            "{} rejected",
            w.name()
        );
    }
}
