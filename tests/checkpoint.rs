//! Checkpoint/resume equivalence matrix and rejection tests.
//!
//! The contract under test: **a resumed run is byte-identical to an
//! uninterrupted one**. For every workload, snapshot cycle, execution mode
//! (per-cycle, event-driven, parallel) and fault schedule, snapshotting at
//! cycle N, dropping the live system, restoring from the serialized bytes
//! and running to completion must produce exactly the `{:#?}` rendering an
//! uninterrupted run produces. And the flip side: corrupted, truncated,
//! version-bumped or config-mismatched checkpoints are rejected with a
//! typed [`SimError::BadCheckpoint`] naming the failed check — never a
//! panic, never a silently wrong resume.

use std::sync::Arc;

use ndp_core::checkpoint;
use standardized_ndp::prelude::*;

const MAX: u64 = 30_000_000;

fn scale() -> Scale {
    Scale {
        warps: 32,
        iters: 2,
    }
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    PerCycle,
    Event,
    Parallel,
}

const MODES: [Mode; 3] = [Mode::PerCycle, Mode::Event, Mode::Parallel];

fn small_ndp() -> SystemConfig {
    let mut cfg = SystemConfig::naive_ndp();
    cfg.gpu.num_sms = 8;
    cfg
}

/// A benign seeded fault schedule (delays only) that every workload
/// absorbs: the run still drains, but the injector's decision stream and
/// held packets are live state the checkpoint must carry.
fn delay_faults() -> FaultConfig {
    FaultConfig {
        seed: 7,
        delay_prob: 0.05,
        delay_cycles: 200,
        ..Default::default()
    }
}

fn fresh(cfg: &SystemConfig, w: Workload, mode: Mode, faults: Option<FaultConfig>) -> System {
    let p = w.build(&scale());
    let mut sys = System::new(cfg.clone(), &p);
    match mode {
        Mode::PerCycle => {
            sys.set_skip(false);
            sys.set_parallel(false);
        }
        Mode::Event => {
            sys.set_skip(true);
            sys.set_parallel(false);
        }
        Mode::Parallel => {
            sys.set_skip(true);
            sys.set_parallel(true);
        }
    }
    if let Some(f) = faults {
        sys.inject_faults(f);
    }
    sys
}

fn kernel_for(w: Workload) -> Arc<ndp_compiler::CompiledKernel> {
    Arc::new(compile(&w.build(&scale()), &CompilerConfig::default()))
}

/// Snapshot a `mode` run of `w` at `snap_at`, restore into a brand-new
/// system, run to completion, and demand the exact golden rendering.
fn assert_resume_equivalent(
    cfg: &SystemConfig,
    w: Workload,
    mode: Mode,
    faults: Option<FaultConfig>,
    snap_at: u64,
    golden: &str,
) {
    let mut sys = fresh(cfg, w, mode, faults);
    sys.run_until(snap_at)
        .expect("no violation before the snapshot point");
    let bytes = sys.snapshot();
    drop(sys); // the "interruption"

    let resumed = System::try_restore(cfg.clone(), kernel_for(w), &bytes)
        .expect("pristine checkpoint accepted");
    let r = resumed.run(MAX).expect("no violation after resume");
    assert_eq!(
        format!("{r:#?}"),
        golden,
        "{}/{mode:?} resumed at cycle {snap_at} diverged from the uninterrupted run",
        w.name()
    );
}

/// Uninterrupted golden rendering for one (config, workload, mode, faults)
/// cell, plus the completion cycle (so snapshot points can be placed
/// strictly before the run drains).
fn golden(
    cfg: &SystemConfig,
    w: Workload,
    mode: Mode,
    faults: Option<FaultConfig>,
) -> (String, u64) {
    let r = fresh(cfg, w, mode, faults)
        .run(MAX)
        .expect("golden run clean");
    assert!(!r.timed_out, "{}/{mode:?} golden timed out", w.name());
    (format!("{r:#?}"), r.cycles)
}

/// Every workload, event-driven mode, two snapshot depths (¼ and ¾ of the
/// workload's own completion time).
#[test]
fn resume_is_byte_identical_for_all_workloads() {
    let cfg = small_ndp();
    for &w in WORKLOADS.iter() {
        let (gold, cycles) = golden(&cfg, w, Mode::Event, None);
        for snap_at in [cycles / 4, cycles * 3 / 4] {
            assert_resume_equivalent(&cfg, w, Mode::Event, None, snap_at.max(1), &gold);
        }
    }
}

/// All three execution modes agree with each other *and* survive a
/// mid-run snapshot: the golden is taken per-cycle, the resumes run
/// per-cycle, event-driven, and parallel.
#[test]
fn resume_is_byte_identical_across_execution_modes() {
    let cfg = small_ndp();
    for w in [Workload::Vadd, Workload::Bfs, Workload::Bprop] {
        let (gold, cycles) = golden(&cfg, w, Mode::PerCycle, None);
        for mode in MODES {
            assert_resume_equivalent(&cfg, w, mode, None, cycles / 3, &gold);
        }
    }
}

/// A seeded fault schedule's decision stream, held packets and fault
/// statistics all survive the round trip: resumed runs replay the exact
/// same faults the uninterrupted run sees.
#[test]
fn resume_is_byte_identical_under_seeded_faults() {
    let cfg = small_ndp();
    let faults = Some(delay_faults());
    for w in [Workload::Vadd, Workload::Bfs] {
        for mode in [Mode::Event, Mode::Parallel] {
            let (gold, cycles) = golden(&cfg, w, mode, faults);
            for frac in [4u64, 2] {
                assert_resume_equivalent(&cfg, w, mode, faults, (cycles / frac).max(1), &gold);
            }
        }
    }
}

/// The baseline (NDP-off) configuration checkpoints too — no NSU state in
/// flight, but SM/cache/DRAM state still round-trips.
#[test]
fn resume_is_byte_identical_for_baseline_config() {
    let mut cfg = SystemConfig::baseline();
    cfg.gpu.num_sms = 8;
    let (gold, cycles) = golden(&cfg, Workload::Vadd, Mode::Event, None);
    assert_resume_equivalent(&cfg, Workload::Vadd, Mode::Event, None, cycles / 2, &gold);
}

/// The observability layer is part of the result (`RunResult::obs`), so it
/// is part of the checkpoint: histograms, time-series and event rings
/// resume without a seam.
#[test]
fn observability_state_survives_resume() {
    let cfg = small_ndp();
    let w = Workload::Vadd;
    let run_gold = || {
        let mut sys = fresh(&cfg, w, Mode::Event, None);
        sys.enable_obs(ObsConfig::on());
        sys.run(MAX).expect("clean")
    };
    let gold = format!("{:#?}", run_gold());

    let mut sys = fresh(&cfg, w, Mode::Event, None);
    sys.enable_obs(ObsConfig::on());
    sys.run_until(1_024).expect("clean prefix");
    let bytes = sys.snapshot();
    drop(sys);
    let r = System::try_restore(cfg.clone(), kernel_for(w), &bytes)
        .expect("restore accepted")
        .run(MAX)
        .expect("clean tail");
    assert_eq!(format!("{r:#?}"), gold, "obs report diverged across resume");
}

/// Snapshotting is a pure read: the same prefix always serializes to the
/// same bytes, and taking a snapshot does not disturb the run that
/// continues afterwards.
#[test]
fn snapshots_are_deterministic_and_non_perturbing() {
    let cfg = small_ndp();
    let w = Workload::Kmn;
    let (gold, cycles) = golden(&cfg, w, Mode::Event, None);
    let snap_at = cycles / 2;
    let run_to = |cycle: u64| {
        let mut sys = fresh(&cfg, w, Mode::Event, None);
        sys.run_until(cycle).expect("clean prefix");
        sys
    };
    let a = run_to(snap_at).snapshot();
    let b = run_to(snap_at).snapshot();
    assert_eq!(a, b, "same prefix must serialize identically");

    let mut sys = fresh(&cfg, w, Mode::Event, None);
    sys.run_until(snap_at).expect("clean prefix");
    let _ = sys.snapshot(); // observe, then keep running the same system
    let r = sys.run(MAX).expect("clean tail");
    assert_eq!(
        format!("{r:#?}"),
        gold,
        "taking a snapshot perturbed the run"
    );
}

// ---------------------------------------------------------------------------
// Rejection: every corruption is a typed error, never a panic.
// ---------------------------------------------------------------------------

fn snapshot_bytes(cfg: &SystemConfig, w: Workload) -> Vec<u8> {
    let mut sys = fresh(cfg, w, Mode::Event, None);
    sys.run_until(1_024).expect("clean prefix");
    sys.snapshot()
}

fn expect_rejection(cfg: &SystemConfig, w: Workload, bytes: &[u8]) -> &'static str {
    match System::try_restore(cfg.clone(), kernel_for(w), bytes) {
        Err(SimError::BadCheckpoint { check, .. }) => check,
        Err(other) => panic!("expected BadCheckpoint, got {other}"),
        Ok(_) => panic!("corrupt checkpoint accepted"),
    }
}

/// Flip single bytes across the whole image: header flips fail their named
/// structural check, payload flips fail the checksum — and none of them
/// panic or restore.
#[test]
fn bit_flips_anywhere_are_rejected() {
    let cfg = small_ndp();
    let w = Workload::Vadd;
    let good = snapshot_bytes(&cfg, w);
    System::try_restore(cfg.clone(), kernel_for(w), &good).expect("pristine bytes accepted");
    for pos in (0..good.len()).step_by(97) {
        let mut bad = good.clone();
        bad[pos] ^= 0x40;
        let check = expect_rejection(&cfg, w, &bad);
        assert!(
            !check.is_empty(),
            "flip at byte {pos} must name the failed check"
        );
    }
}

/// Truncations at every depth — mid-header, mid-payload, empty — are
/// length/magic errors, not panics.
#[test]
fn truncations_are_rejected() {
    let cfg = small_ndp();
    let w = Workload::Vadd;
    let good = snapshot_bytes(&cfg, w);
    for keep in [0, 1, 7, 19, checkpoint::HEADER_BYTES, good.len() - 1] {
        let check = expect_rejection(&cfg, w, &good[..keep]);
        assert!(matches!(check, "magic" | "schema" | "header" | "length"));
    }
    // Trailing garbage is a length mismatch, not silently ignored.
    let mut long = good;
    long.extend_from_slice(b"junk");
    assert_eq!(expect_rejection(&cfg, w, &long), "length");
}

/// A future (or past) schema version is refused by name, before any
/// payload decoding happens.
#[test]
fn schema_version_bump_is_rejected() {
    let cfg = small_ndp();
    let w = Workload::Vadd;
    let mut bytes = snapshot_bytes(&cfg, w);
    bytes[8] = bytes[8].wrapping_add(1); // schema u32 follows the u64 magic
    assert_eq!(expect_rejection(&cfg, w, &bytes), "schema");
}

/// Restoring under a different configuration or kernel is refused by the
/// fingerprint checks — the state would not fit the rebuilt machine.
#[test]
fn config_and_kernel_mismatches_are_rejected() {
    let cfg = small_ndp();
    let bytes = snapshot_bytes(&cfg, Workload::Vadd);

    let mut other = cfg.clone();
    other.gpu.num_sms = 4;
    match System::try_restore(other, kernel_for(Workload::Vadd), &bytes) {
        Err(SimError::BadCheckpoint { check, .. }) => assert_eq!(check, "config"),
        Err(e) => panic!("expected BadCheckpoint[config], got {e}"),
        Ok(_) => panic!("config mismatch accepted"),
    }

    match System::try_restore(cfg.clone(), kernel_for(Workload::Bfs), &bytes) {
        Err(SimError::BadCheckpoint { check, .. }) => assert_eq!(check, "kernel"),
        Err(e) => panic!("expected BadCheckpoint[kernel], got {e}"),
        Ok(_) => panic!("kernel mismatch accepted"),
    }
}

/// A missing checkpoint file is a typed `read` failure.
#[test]
fn missing_file_is_a_typed_error() {
    let cfg = small_ndp();
    let path = std::path::Path::new("/nonexistent/ndp/resume.ndpckpt");
    match System::restore_from_file(cfg, kernel_for(Workload::Vadd), path) {
        Err(SimError::BadCheckpoint { check, .. }) => assert_eq!(check, "read"),
        Err(e) => panic!("expected BadCheckpoint[read], got {e}"),
        Ok(_) => panic!("missing file accepted"),
    }
}

/// Save-to-disk round trip through the atomic writer, exactly as the
/// periodic `NDP_CHECKPOINT_*` path writes it.
#[test]
fn file_round_trip_resumes_identically() {
    let cfg = small_ndp();
    let w = Workload::Fwt;
    let (gold, cycles) = golden(&cfg, w, Mode::Event, None);

    let dir = std::env::temp_dir().join(format!("ndp-ckpt-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("fwt.ndpckpt");

    let mut sys = fresh(&cfg, w, Mode::Event, None);
    sys.run_until(cycles / 2).expect("clean prefix");
    sys.save_checkpoint(&file).expect("atomic save");
    drop(sys);

    let r = System::restore_from_file(cfg.clone(), kernel_for(w), &file)
        .expect("file restore accepted")
        .run(MAX)
        .expect("clean tail");
    assert_eq!(format!("{r:#?}"), gold);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A wedged machine's watchdog post-mortem (`NDP_STALL_DUMP`) writes a
/// checkpoint next to the stall report, and that checkpoint restores into
/// a system frozen at the stall cycle — the state a post-mortem inspects.
#[test]
fn watchdog_stall_dumps_a_restorable_checkpoint() {
    let mut cfg = small_ndp();
    cfg.nsu.cmd_entries = 2;
    let p = Workload::Vadd.build(&scale());
    let dir = std::env::temp_dir().join(format!("ndp-stall-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    std::env::set_var("NDP_STALL_DUMP", &dir);
    let mut sys = System::new(cfg.clone(), &p);
    sys.set_watchdog(Some(4_096));
    sys.inject_faults(FaultConfig {
        withhold_credits: true,
        ..Default::default()
    });
    let r = sys
        .run(50_000)
        .expect("a wedge is a stall, not a violation");
    std::env::remove_var("NDP_STALL_DUMP");

    let stall = r.stall.as_deref().expect("watchdog fired");
    let dumped: Vec<_> = std::fs::read_dir(&dir)
        .expect("dump directory created")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(dumped.len(), 1, "exactly one post-mortem file: {dumped:?}");

    let kernel = Arc::new(compile(&p, &CompilerConfig::default()));
    let restored =
        System::restore_from_file(cfg, kernel, &dumped[0]).expect("post-mortem restores");
    assert_eq!(
        restored.cycle(),
        stall.cycle,
        "post-mortem freezes the stall cycle"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
