//! Integration tests for the perf self-profiling layer (DESIGN.md §11):
//! profiling must never change simulation outputs, the `NDP_PERF` knob
//! must arm it end to end, and the per-stage counters must account for
//! every pipeline pass.

use standardized_ndp::prelude::*;

const MAX: u64 = 10_000_000;

fn small_run(perf: Option<PerfConfig>) -> RunResult {
    let mut cfg = SystemConfig::ndp_dynamic_cache();
    cfg.gpu.num_sms = 8;
    let program = Workload::Vadd.build(&Scale {
        warps: 64,
        iters: 4,
    });
    let mut sys = System::new(cfg, &program);
    // Explicitly arm or disarm (overriding any ambient NDP_PERF): env vars
    // are process-global and tests run concurrently.
    sys.enable_perf(perf.unwrap_or_default());
    let r = sys.run(MAX).expect("no protocol violation");
    assert!(!r.timed_out);
    r
}

/// Profiling on vs off: the simulation result must be byte-identical in
/// its `{:#?}` rendering (the golden-file format). Wall times are host-
/// dependent, so the perf report is carried next to the result, never
/// inside its Debug output.
#[test]
fn profiling_keeps_sim_output_byte_identical() {
    let off = small_run(None);
    let mut on_cfg = PerfConfig::on();
    on_cfg.heartbeat_interval = 4096;
    let on = small_run(Some(on_cfg));
    assert!(off.perf.is_none(), "disarmed run must carry no perf report");
    assert!(on.perf.is_some(), "armed run must carry a perf report");
    assert_eq!(
        format!("{off:#?}"),
        format!("{on:#?}"),
        "profiling changed the golden-visible simulation output"
    );
    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.gpu_link_bytes, on.gpu_link_bytes);
    assert_eq!(off.nsu_instrs, on.nsu_instrs);
}

/// The race detector (DESIGN.md §16) follows the same contract as the
/// profiler: disarmed it costs nothing (no state, no hooks taken), and
/// armed it is read-only — the `{:#?}` golden rendering must be
/// byte-identical either way, with the armed run demonstrably recording.
#[test]
fn race_detector_keeps_sim_output_byte_identical() {
    let run = |race: bool| {
        let mut cfg = SystemConfig::ndp_dynamic_cache();
        cfg.gpu.num_sms = 8;
        let program = Workload::Vadd.build(&Scale {
            warps: 64,
            iters: 4,
        });
        let mut sys = System::new(cfg, &program);
        // Explicit setter, not NDP_RACE: env vars are process-global.
        sys.set_race(race);
        let handle = sys.race_handle();
        let r = sys.run(MAX).expect("no protocol violation");
        assert!(!r.timed_out);
        (r, handle)
    };
    let (off, off_handle) = run(false);
    let (on, on_handle) = run(true);
    assert!(off_handle.is_none(), "disarmed run must carry no detector");
    let race = on_handle.expect("armed run must carry a detector");
    assert_eq!(
        format!("{off:#?}"),
        format!("{on:#?}"),
        "race detector changed the golden-visible simulation output"
    );
    let (accesses, _) = race.stats();
    assert!(accesses > 0, "armed detector never engaged");
}

/// The typed env knob arms profiling through `System` construction.
#[test]
fn ndp_perf_env_knob_arms_profiling() {
    let mut cfg = SystemConfig::ndp_dynamic_cache();
    cfg.gpu.num_sms = 8;
    let program = Workload::Vadd.build(&Scale {
        warps: 64,
        iters: 4,
    });
    std::env::set_var("NDP_PERF", "1");
    let sys = System::new(cfg, &program);
    std::env::remove_var("NDP_PERF");
    let r = sys.run(MAX).expect("no protocol violation");
    let perf = r.perf.expect("NDP_PERF=1 must arm the profiler");
    assert_eq!(perf.cycles, r.cycles);
}

/// Counter completeness: every pipeline stage is reported exactly once
/// per simulated cycle (ran or gated), fractions stay in range, routing
/// stages move real work, and heartbeats track throughput.
#[test]
fn stage_counters_account_for_every_cycle() {
    let mut cfg = PerfConfig::on();
    cfg.heartbeat_interval = 512;
    let r = small_run(Some(cfg));
    let perf = r.perf.as_ref().expect("profiling was enabled");

    assert_eq!(perf.cycles, r.cycles);
    assert_eq!(perf.stages.len(), 20, "one entry per PIPELINE stage");
    for s in &perf.stages {
        assert_eq!(
            s.invocations + s.gated + s.skipped,
            r.cycles,
            "stage {} not accounted every cycle",
            s.name
        );
        assert!(
            (0.0..=1.0).contains(&s.skip_frac),
            "{}: skip_frac {}",
            s.name,
            s.skip_frac
        );
        assert!(
            (0.0..=1.0).contains(&s.idle_frac),
            "{}: idle_frac {}",
            s.name,
            s.idle_frac
        );
        assert!(
            (0.0..=1.0).contains(&s.wall_frac),
            "{}: wall_frac {}",
            s.name,
            s.wall_frac
        );
        assert!(s.idle <= s.routed, "{}: idle beyond invocations", s.name);
        assert!(
            s.moved == 0 || s.routed > 0,
            "{}: moved without routing",
            s.name
        );
    }
    // A Vadd run moves real traffic: some routing stage delivered packets,
    // and some gated stage exists (NSU-clock stages at a slower clock).
    assert!(
        perf.stages.iter().any(|s| s.moved > 0),
        "no stage moved packets"
    );
    let total_moved: u64 = perf.stages.iter().map(|s| s.moved).sum();
    assert!(total_moved > 0);
    // Event-driven core: with skipping on (the default) quiescent stages
    // must actually be elided, and the report must show it. Under
    // `NDP_NO_SKIP=1` (the CI per-cycle matrix leg) the same identity
    // above must hold with zero skips — every cycle fully ticked.
    let total_skipped: u64 = perf.stages.iter().map(|s| s.skipped).sum();
    let no_skip = standardized_ndp::common::env::flag_or_die("NDP_NO_SKIP").unwrap_or(false);
    if no_skip {
        assert_eq!(total_skipped, 0, "NDP_NO_SKIP run still skipped a stage");
    } else {
        assert!(total_skipped > 0, "no stage ever skipped a quiescent cycle");
    }

    // Ready-set scheduler telemetry (DESIGN.md §15): one occupancy entry
    // per SM, bounded by the warp-slot count, and a busy Vadd run must
    // have had real issue candidates on at least one SM.
    assert_eq!(perf.sm_ready_occupancy.len(), 8, "one entry per SM");
    for (i, occ) in perf.sm_ready_occupancy.iter().enumerate() {
        assert!(
            (0.0..=48.0).contains(occ),
            "sm{i}: occupancy {occ} outside slot bounds"
        );
    }
    assert!(
        perf.sm_ready_occupancy.iter().any(|&o| o > 0.0),
        "no SM ever had a ready warp"
    );

    assert!(
        !perf.heartbeats.is_empty(),
        "heartbeats expected at interval 512"
    );
    for hb in &perf.heartbeats {
        assert!(hb.cycle <= r.cycles);
        assert!(hb.cycles_per_sec > 0.0);
        assert!((0.0..=1.0).contains(&hb.route_occupancy));
    }
    assert!(perf.cycles_per_sec > 0.0);
    assert!(perf.wall_ns > 0);

    // The exporters accept the report.
    let table = perf.table_text();
    assert!(table.contains("stage"), "table lists stages:\n{table}");
    let json = perf.chrome_trace_json();
    assert!(json.contains("traceEvents"));
}
