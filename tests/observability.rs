//! Observability-layer integration tests: enabling observation must never
//! change simulation outcomes, and an enabled run must produce the full
//! report (latency segments, occupancy series, exportable trace).

use standardized_ndp::prelude::*;

const MAX: u64 = 30_000_000;

fn system(w: Workload) -> System {
    let mut cfg = SystemConfig::naive_ndp();
    cfg.gpu.num_sms = 8;
    let p = w.build(&Scale {
        warps: 64,
        iters: 4,
    });
    System::new(cfg, &p)
}

#[test]
fn observation_is_invisible_to_the_simulation() {
    // The tentpole guarantee: obs hooks are read-only, so a run with
    // observability on is bit-identical (cycles, traffic, energy activity —
    // the whole RunResult) to the same run with it off.
    let off = system(Workload::Vadd).run(MAX).unwrap();
    let mut sys = system(Workload::Vadd);
    sys.enable_obs(ObsConfig::on());
    let mut on = sys.run(MAX).unwrap();
    assert!(!off.timed_out && !on.timed_out);
    assert!(on.obs.is_some(), "enabled run must carry a report");
    on.obs = None;
    assert_eq!(on, off, "observability perturbed the simulation");
}

#[test]
fn enabled_run_reports_all_segments_and_series() {
    let mut sys = system(Workload::Vadd);
    sys.enable_obs(ObsConfig::on());
    let r = sys.run(MAX).unwrap();
    assert!(!r.timed_out);
    let obs = r.obs.as_ref().expect("report present");

    // All five round-trip segments, fully populated.
    for seg in [
        "end_to_end",
        "cmd_dispatch",
        "rdf_drain",
        "nsu_execute",
        "ack_return",
    ] {
        let h = obs.segment(seg).unwrap_or_else(|| panic!("segment {seg}"));
        assert_eq!(h.count, obs.txn_completed, "{seg} records every txn");
        assert!(h.max >= h.p50, "{seg} ordering");
    }
    let e2e = obs.segment("end_to_end").expect("e2e");
    assert!(e2e.p99 >= e2e.p50 && e2e.p50 > 0);

    // The acceptance-criteria series: SM NDP buffers, NSU buffers, and at
    // least one link credit pool — plus the wider queue set.
    for name in [
        "sm_ndp_pending",
        "sm_ndp_ready",
        "nsu_cmd_queue",
        "nsu_read_data",
        "nsu_write_addr",
        "nsu_warp_slots",
        "credit_cmd_in_use",
        "credit_read_in_use",
        "credit_write_in_use",
        "gpu_link_up_in_transit",
        "gpu_link_down_in_transit",
        "vault_queued",
        "memnet_in_flight",
    ] {
        let s = obs
            .find_series(name)
            .unwrap_or_else(|| panic!("series {name}"));
        assert!(!s.samples.is_empty(), "{name} sampled");
        assert!(s.interval_cycles > 0, "{name} interval");
    }
    // A busy NDP run must actually exercise the credit pools.
    let cmd = obs.find_series("credit_cmd_in_use").expect("present");
    assert!(
        cmd.samples.iter().any(|&v| v > 0.0),
        "command credits never observed in use"
    );
}

#[test]
fn exporters_emit_wellformed_documents() {
    let mut sys = system(Workload::Vadd);
    sys.enable_obs(ObsConfig::on());
    let r = sys.run(MAX).unwrap();
    let obs = r.obs.as_ref().expect("report present");

    let trace = obs.chrome_trace_json();
    assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":\"M\""), "metadata events");
    assert!(trace.contains("\"ph\":\"i\""), "packet instants");
    assert!(trace.contains("\"ph\":\"C\""), "occupancy counters");
    assert!(trace.contains("OffloadCmd") && trace.contains("OffloadAck"));

    let metrics = obs.metrics_json();
    assert!(metrics.contains("\"latency_cycles\""));
    assert!(metrics.contains("\"end_to_end\""));
    assert!(metrics.contains("\"occupancy\""));
    assert!(metrics.contains("\"sm_ndp_pending\""));

    let text = obs.summary_text();
    assert!(text.contains("end_to_end") && text.contains("sm_ndp_pending"));
}

#[test]
fn tracer_and_obs_share_one_event_stream() {
    // The Fig. 2 tracer and the obs event ring are the same substrate: an
    // instance rendered by one must appear in the other's export.
    let mut sys = system(Workload::Vadd);
    sys.enable_trace(4096);
    sys.enable_obs(ObsConfig::on());
    let r = sys.run(MAX).unwrap();
    let obs = r.obs.as_ref().expect("report present");
    assert!(!obs.events.is_empty(), "obs ring captured protocol events");
    let with_tokens = obs.events.iter().filter(|e| e.token.is_some()).count();
    assert!(
        with_tokens > 0,
        "NDP packets carry tokens in the shared ring"
    );
}
