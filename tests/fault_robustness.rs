//! Robustness-layer integration tests: the forward-progress watchdog, the
//! protocol-invariant engine, and the deterministic fault injector, working
//! together on a live system.
//!
//! The property under test: **no fault schedule produces a silent
//! `timed_out`**. Every run either completes cleanly, surfaces a typed
//! protocol violation (`Err(SimError)`), or aborts early with a structured
//! [`StallReport`] naming the starved resource.

use standardized_ndp::prelude::*;

fn small_ndp_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::naive_ndp();
    cfg.gpu.num_sms = 8;
    cfg
}

fn small_program() -> ndp_isa::program::Program {
    Workload::Vadd.build(&Scale {
        warps: 64,
        iters: 4,
    })
}

/// Withholding every NSU credit return must wedge the machine, and the
/// watchdog must catch the wedge quickly with a report naming the starved
/// credit pool — not spin silently to `max_cycles`.
#[test]
fn withheld_credits_wedge_is_detected_and_named() {
    let mut cfg = small_ndp_cfg();
    // Two command entries per HMC: the pools drain almost immediately once
    // returns stop, so the wedge (and its detection) happens early.
    cfg.nsu.cmd_entries = 2;
    let p = small_program();
    let mut sys = System::new(cfg, &p);
    sys.set_watchdog(Some(4_096));
    sys.inject_faults(FaultConfig {
        withhold_credits: true,
        ..Default::default()
    });
    let r = sys
        .run(50_000)
        .expect("a wedge is a stall, not a violation");
    assert!(r.timed_out, "withheld credits must wedge the run");
    let stall = r.stall.as_deref().expect("watchdog attaches a StallReport");
    assert!(
        stall.cycle < 10_000,
        "wedge detected too late: cycle {}",
        stall.cycle
    );
    assert!(stall.stalled_for >= 4_096);
    let text = stall.to_string();
    assert!(
        text.contains("credit pool exhausted"),
        "report must name the starved credit pool:\n{text}"
    );
    assert!(
        !stall.credits.is_empty(),
        "exhausted pools must appear in the credit section"
    );
    assert!(
        stall.credits.iter().any(|c| c.in_use == c.capacity),
        "at least one pool fully drained: {:?}",
        stall.credits
    );
    let stats = r.faults.expect("injector armed → stats on the result");
    assert!(stats.credits_withheld > 0, "faults actually fired");
}

/// The no-silent-timeout property, over a family of seeded fault schedules
/// mixing drops, duplicates, and delays. Acceptable outcomes per seed:
///   1. `Err(SimError)` — a fault broke the protocol and the invariant
///      engine said exactly how;
///   2. clean completion — the machine absorbed the faults;
///   3. `timed_out` **with** a `StallReport` — the watchdog explained the
///      wedge.
///
/// A `timed_out` with no report is the one forbidden outcome.
#[test]
fn every_fault_schedule_ends_in_a_structured_outcome() {
    let p = small_program();
    for seed in 0..8u64 {
        let mut sys = System::new(small_ndp_cfg(), &p);
        sys.set_watchdog(Some(30_000));
        sys.set_deep_invariants(true);
        sys.inject_faults(FaultConfig {
            seed,
            drop_prob: 0.01,
            dup_prob: 0.01,
            delay_prob: 0.05,
            delay_cycles: 500,
            ..Default::default()
        });
        match sys.run(2_000_000) {
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty(), "seed {seed}: violation has a message");
            }
            Ok(r) if !r.timed_out => {
                assert!(r.stall.is_none(), "seed {seed}: clean run carries no stall");
                assert!(r.cycles > 0);
            }
            Ok(r) => {
                let stall = r
                    .stall
                    .as_deref()
                    .unwrap_or_else(|| panic!("seed {seed}: silent timeout — no StallReport"));
                assert!(
                    !stall.wait_for.is_empty(),
                    "seed {seed}: stall report must carry a wait-for summary"
                );
            }
        }
    }
}

/// Dropped packets are deterministic per seed: the same schedule produces
/// the same injected-fault counts on two independent runs.
#[test]
fn fault_schedules_replay_exactly_from_their_seed() {
    let p = small_program();
    let run_once = || {
        let mut sys = System::new(small_ndp_cfg(), &p);
        sys.set_watchdog(Some(30_000));
        sys.inject_faults(FaultConfig {
            seed: 3,
            drop_prob: 0.005,
            dup_prob: 0.005,
            ..Default::default()
        });
        match sys.run(2_000_000) {
            Ok(r) => (true, r.faults.expect("injector armed")),
            Err(_) => (false, FaultStats::default()),
        }
    };
    let (ok_a, a) = run_once();
    let (ok_b, b) = run_once();
    assert_eq!(ok_a, ok_b, "same schedule, same outcome class");
    assert_eq!(a, b, "same schedule, same fault occurrence counts");
    if ok_a {
        assert!(
            a.dropped + a.duplicated > 0,
            "schedule at these probabilities should fire at least once: {a:?}"
        );
    }
}

/// With deep invariant checking and the watchdog armed but **no** faults,
/// a healthy run completes exactly as before: no stall report, no
/// violations, and the protocol counters balance at drain.
#[test]
fn clean_run_passes_deep_invariants_with_watchdog_armed() {
    let p = small_program();
    let mut sys = System::new(small_ndp_cfg(), &p);
    sys.set_watchdog(Some(10_000));
    sys.set_deep_invariants(true);
    let r = sys.run(2_000_000).expect("clean run violates nothing");
    assert!(!r.timed_out, "healthy machine must drain");
    assert!(r.stall.is_none(), "no stall report on a clean run");
    assert!(r.offloaded > 0, "NDP path exercised");
}

/// Baseline (no NDP traffic) also stays clean under deep checks — the
/// invariant engine must not demand NDP counters from a machine that never
/// offloads.
#[test]
fn baseline_run_is_clean_under_deep_invariants() {
    let mut cfg = SystemConfig::baseline();
    cfg.gpu.num_sms = 8;
    let p = small_program();
    let mut sys = System::new(cfg, &p);
    sys.set_watchdog(Some(10_000));
    sys.set_deep_invariants(true);
    let r = sys.run(2_000_000).expect("baseline violates nothing");
    assert!(!r.timed_out);
    assert!(r.stall.is_none());
}
