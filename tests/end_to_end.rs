//! End-to-end integration tests across the whole simulator stack: every
//! workload, baseline and NDP, must drain cleanly and exhibit the
//! first-order behaviours the paper's mechanism is built on.

use standardized_ndp::prelude::*;

const MAX: u64 = 30_000_000;

fn small(mut cfg: SystemConfig, w: Workload) -> RunResult {
    cfg.gpu.num_sms = 8;
    let p = w.build(&Scale {
        warps: 64,
        iters: 4,
    });
    System::new(cfg, &p)
        .run(MAX)
        .expect("no protocol violation")
}

#[test]
fn every_workload_drains_on_baseline() {
    for w in WORKLOADS {
        let r = small(SystemConfig::baseline(), w);
        assert!(!r.timed_out, "{} timed out", w.name());
        assert!(r.issue.issued > 0, "{} issued nothing", w.name());
        assert_eq!(r.nsu_instrs, 0, "{}: NSUs must idle in baseline", w.name());
    }
}

#[test]
fn every_workload_drains_under_naive_ndp() {
    for w in WORKLOADS {
        let r = small(SystemConfig::naive_ndp(), w);
        assert!(!r.timed_out, "{} timed out", w.name());
        assert!(r.offloaded > 0, "{} never offloaded", w.name());
        assert!(r.nsu_instrs > 0, "{}: NSU code must run", w.name());
    }
}

#[test]
fn every_workload_drains_under_dynamic_cache_policy() {
    for w in WORKLOADS {
        let r = small(SystemConfig::ndp_dynamic_cache(), w);
        assert!(!r.timed_out, "{} timed out", w.name());
    }
}

#[test]
fn streaming_ndp_slashes_gpu_link_traffic() {
    // Slightly larger than `small` so the streams outgrow the caches.
    let run = |mut cfg: SystemConfig, w: Workload| {
        cfg.gpu.num_sms = 8;
        let p = w.build(&Scale {
            warps: 128,
            iters: 8,
        });
        System::new(cfg, &p)
            .run(MAX)
            .expect("no protocol violation")
    };
    for w in [Workload::Vadd, Workload::Kmn, Workload::MiniFe] {
        let base = run(SystemConfig::baseline(), w);
        let ndp = run(SystemConfig::naive_ndp(), w);
        assert!(
            (ndp.gpu_link_bytes as f64) < 0.6 * base.gpu_link_bytes as f64,
            "{}: {} vs {} bytes",
            w.name(),
            ndp.gpu_link_bytes,
            base.gpu_link_bytes
        );
        assert!(
            ndp.memnet_bytes > 0,
            "{}: data must cross the memnet",
            w.name()
        );
    }
}

#[test]
fn offloaded_warp_count_matches_policy() {
    let r = small(SystemConfig::ndp_static(0.5), Workload::Vadd);
    let frac = r.offload_fraction();
    assert!((frac - 0.5).abs() < 0.15, "ratio 0.5 produced {frac}");
}

#[test]
fn runs_are_deterministic() {
    let a = small(SystemConfig::naive_ndp(), Workload::Stcl);
    let b = small(SystemConfig::naive_ndp(), Workload::Stcl);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.gpu_link_bytes, b.gpu_link_bytes);
    assert_eq!(a.dram.activations, b.dram.activations);
}

#[test]
fn page_map_seed_changes_timing_but_not_completion() {
    let mut cfg = SystemConfig::naive_ndp();
    cfg.gpu.num_sms = 8;
    let p = Workload::Vadd.build(&Scale {
        warps: 64,
        iters: 4,
    });
    let a = System::new(cfg.clone(), &p).run(MAX).unwrap();
    cfg.seed ^= 0xdecafbad;
    let b = System::new(cfg, &p).run(MAX).unwrap();
    assert!(!a.timed_out && !b.timed_out);
    // Different random page→HMC maps: traffic identical in volume terms is
    // not guaranteed, completion is.
    assert!(a.offloaded > 0 && b.offloaded > 0);
}

#[test]
fn bigger_gpu_is_faster_on_memlight_workload() {
    // Sanity for the §7.3 scaling study machinery: more SMs must not slow
    // a compute-heavy kernel down.
    let mut small_cfg = SystemConfig::baseline();
    small_cfg.gpu.num_sms = 4;
    let mut big_cfg = SystemConfig::baseline();
    big_cfg.gpu.num_sms = 16;
    let p = Workload::Sp.build(&Scale {
        warps: 256,
        iters: 4,
    });
    let a = System::new(small_cfg, &p).run(MAX).unwrap();
    let b = System::new(big_cfg, &p).run(MAX).unwrap();
    assert!(b.cycles < a.cycles, "{} !< {}", b.cycles, a.cycles);
}

#[test]
fn nsu_frequency_halving_still_completes() {
    let mut cfg = SystemConfig::naive_ndp();
    cfg.nsu.clock_mhz = 175;
    let r = small(cfg, Workload::Vadd);
    assert!(!r.timed_out);
    assert!(r.nsu_instrs > 0);
}

#[test]
fn energy_model_produces_consistent_breakdown() {
    let r = small(SystemConfig::ndp_dynamic(), Workload::Kmn);
    let e = r.energy(&EnergyParams::default());
    assert!(e.total() > 0.0);
    assert!(e.gpu > 0.0 && e.dram > 0.0);
    // NSUs were active, so they must burn energy under NDP.
    assert!(e.nsu > 0.0);
}

#[test]
fn morecore_baseline_runs_with_72_sms() {
    let p = Workload::Kmn.build(&Scale {
        warps: 144,
        iters: 4,
    });
    let r = System::new(SystemConfig::baseline_more_core(), &p)
        .run(MAX)
        .unwrap();
    assert!(!r.timed_out);
}
