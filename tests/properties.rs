//! Property-based tests over the core data structures and invariants,
//! spanning crate boundaries.

use proptest::prelude::*;
use standardized_ndp::common::memmap::MemMap;
use standardized_ndp::common::packet::{LineAccess, Packet, PacketKind};
use standardized_ndp::common::SystemConfig;
use standardized_ndp::gpu::coalesce;
use standardized_ndp::memnet::Topology;

proptest! {
    /// Coalescing partitions the active lanes exactly: every active lane
    /// appears in exactly one line access, at its own address, and every
    /// access's lanes share that access's line.
    #[test]
    fn coalesce_partitions_active_lanes(
        base in 0u64..1u64 << 40,
        offsets in prop::collection::vec(0u64..1 << 16, 32),
        active in any::<u32>(),
    ) {
        let mut addrs = [0u64; 32];
        for (i, o) in offsets.iter().enumerate() {
            addrs[i] = base + o * 4;
        }
        let accesses = coalesce(&addrs, active, 4, 128);
        let mut seen = 0u32;
        for a in &accesses {
            for &(lane, addr) in &a.lanes {
                prop_assert_eq!(addr & !127, a.line, "lane outside its line");
                prop_assert_eq!(addr, addrs[lane as usize]);
                prop_assert_eq!(seen & (1 << lane), 0, "lane duplicated");
                seen |= 1 << lane;
            }
        }
        prop_assert_eq!(seen, active, "active lanes not partitioned");
        // Lines are unique.
        let mut lines: Vec<u64> = accesses.iter().map(|a| a.line).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert_eq!(lines.len(), accesses.len());
    }

    /// The §4.1.1 alignment rule: an access is aligned iff every lane reads
    /// `line + lane×4`.
    #[test]
    fn coalesce_alignment_rule(start_lane in 0usize..32, n in 1usize..32) {
        let mut addrs = [0u64; 32];
        let mut active = 0u32;
        let hi = (start_lane + n).min(32);
        for (lane, addr) in addrs.iter_mut().enumerate().take(hi).skip(start_lane) {
            *addr = 0x1000 + lane as u64 * 4;
            active |= 1 << lane;
        }
        let accesses = coalesce(&addrs, active, 4, 128);
        prop_assert_eq!(accesses.len(), 1);
        prop_assert!(!accesses[0].misaligned, "formula satisfied ⇒ aligned");
    }

    /// Page→HMC mapping is total, stable, and respects page granularity.
    #[test]
    fn memmap_is_page_stable(page in 0u64..1 << 30, off1 in 0u64..4096, off2 in 0u64..4096) {
        let m = MemMap::new(&SystemConfig::default());
        let a = page * 4096 + off1;
        let b = page * 4096 + off2;
        prop_assert_eq!(m.hmc_of(a), m.hmc_of(b));
        prop_assert!(m.hmc_of(a).0 < 8);
        let c = m.decode(a);
        prop_assert!(c.vault.0 < 16);
        prop_assert!(c.bank < 16);
    }

    /// Dimension-order routing always takes a minimal path and terminates.
    #[test]
    fn hypercube_routing_is_minimal(a in 0u8..8, b in 0u8..8) {
        use standardized_ndp::common::ids::HmcId;
        let t = Topology::hypercube(8);
        let path = t.path(HmcId(a), HmcId(b));
        prop_assert_eq!(path.len() as u32, t.hops(HmcId(a), HmcId(b)));
        if let Some(last) = path.last() {
            prop_assert_eq!(*last, HmcId(b));
        } else {
            prop_assert_eq!(a, b);
        }
    }

    /// RDF response wire size is monotone in the touched-word count and
    /// never exceeds header + full line (the §4.4 saving).
    #[test]
    fn rdf_response_size_bounded(words in 1usize..=32) {
        use standardized_ndp::common::ids::OffloadToken;
        let access = LineAccess {
            line: 0,
            lanes: (0..words).map(|l| (l as u8, l as u64 * 4)).collect(),
            misaligned: false,
        };
        let size = Packet::wire_size(&PacketKind::RdfResp {
            token: OffloadToken(0),
            seq: 0,
            access,
        });
        prop_assert_eq!(size, 16 + 4 * words as u32);
        prop_assert!(size <= 16 + 128);
    }

    /// Synthetic memory contents are pure: same (seed, addr) ⇒ same value;
    /// the executor and the NSU side always agree.
    #[test]
    fn mem_value_is_pure(seed in any::<u64>(), addr in any::<u64>()) {
        use standardized_ndp::common::rng::mem_value;
        prop_assert_eq!(mem_value(seed, addr), mem_value(seed, addr));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Credit pools never go negative or exceed capacity across arbitrary
    /// reserve/release sequences.
    #[test]
    fn credits_stay_bounded(ops in prop::collection::vec((0usize..4, 1usize..8), 1..200)) {
        use standardized_ndp::common::credit::CreditPool;
        let mut pool = CreditPool::new(16);
        let mut outstanding = 0usize;
        for (op, n) in ops {
            match op {
                0 | 1 => {
                    if pool.try_reserve(n) {
                        outstanding += n;
                    }
                }
                _ => {
                    let back = n.min(outstanding);
                    if back > 0 {
                        pool.release(back);
                        outstanding -= back;
                    }
                }
            }
            prop_assert!(pool.available() <= 16);
            prop_assert_eq!(pool.available() + outstanding, 16);
        }
    }
}

// Guard against inert property testing: an offline-stubbed `proptest!` once
// expanded to nothing, so every property "passed" without executing a single
// assertion. The macro (real or shimmed) generates a directly callable
// `fn`, so count the executions and fail tier-1 if the bodies ever stop
// running.
mod proptest_is_not_inert {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static CASES_RUN: AtomicU32 = AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn counted_property(_x in 0u64..8) {
            CASES_RUN.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn proptest_bodies_actually_execute() {
        CASES_RUN.store(0, Ordering::SeqCst);
        counted_property();
        assert_eq!(
            CASES_RUN.load(Ordering::SeqCst),
            64,
            "proptest! did not execute its body for every configured case — \
             property coverage is silently gone"
        );
    }
}
