//! Oracle property test for the incremental SM scheduler (DESIGN.md §15).
//!
//! The ready set, wake-wheel, retry/promote membership sets, and the cached
//! counters behind `Sm::next_work_at` are all *derived* state, updated at
//! warp state-transition sites. A stale membership bit cannot fail a unit
//! test directly — it only surfaces later as a timing divergence the
//! equivalence suite can't localize. So this suite drives a real `Sm`
//! through randomized offload/reservation/fill/ACK schedules and, **every
//! cycle**, diffs the incremental structures against a brute-force
//! full-slot rescan (`check_sched_consistency`) and the O(1) horizon
//! against the retired full-scan implementation (`next_work_at_oracle`).

use proptest::prelude::*;
use standardized_ndp::common::ids::{Node, OffloadId};
use standardized_ndp::common::packet::{Packet, PacketKind};
use standardized_ndp::common::SystemConfig;
use standardized_ndp::compiler::{compile, CompilerConfig};
use standardized_ndp::gpu::{NdpEnv, Sm, SmConfig};
use standardized_ndp::workloads::{Scale, Workload, WORKLOADS};
use std::sync::Arc;

/// Deterministic xorshift coin-flipper standing in for the offload
/// controller: random offload decisions and random credit denials exercise
/// every retry/promote transition site.
struct RandEnv {
    x: u64,
    offload_pct: u64,
    reserve_pct: u64,
}

impl RandEnv {
    fn new(seed: u64, offload_pct: u64, reserve_pct: u64) -> Self {
        RandEnv {
            x: seed | 1,
            offload_pct,
            reserve_pct,
        }
    }

    fn next(&mut self) -> u64 {
        self.x ^= self.x << 13;
        self.x ^= self.x >> 7;
        self.x ^= self.x << 17;
        self.x
    }

    fn flip(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }
}

impl NdpEnv for RandEnv {
    fn decide_offload(&mut self, _sm: u16, _block: u16) -> bool {
        let p = self.offload_pct;
        self.flip(p)
    }
    fn try_reserve(
        &mut self,
        _hmc: standardized_ndp::common::ids::HmcId,
        _l: usize,
        _s: usize,
    ) -> bool {
        let p = self.reserve_pct;
        self.flip(p)
    }
    fn note_block_lines(&mut self, _b: u16, _l: u32, _h: u32) {}
    fn note_block_done(&mut self, _b: u16, _i: u32) {}
    fn note_wta_line(&mut self, _h: standardized_ndp::common::ids::HmcId) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random warp-state trajectories: the incremental scheduler state must
    /// match a full-slot rescan after every single cycle, and the O(1)
    /// horizon must equal the brute-force one at every query point.
    #[test]
    fn incremental_sched_matches_full_rescan(
        seed in any::<u64>(),
        wl_idx in 0usize..64,
        warps in 1u32..6,
        iters in 1u32..3,
        offload_pct in 0u64..=100,
        reserve_pct in 20u64..=100,
        fill_delay in 1u64..40,
        ack_delay in 1u64..80,
        drop_ack_pct in 0u64..30,
    ) {
        let wl = WORKLOADS[wl_idx % WORKLOADS.len()];
        let program = wl.build(&Scale { warps, iters });
        let sys = SystemConfig::default();
        let kernel = Arc::new(compile(&program, &CompilerConfig::default()));
        let mut sm = Sm::new(SmConfig::from_system(0, &sys), &sys, kernel);
        let mut env = RandEnv::new(seed, offload_pct, reserve_pct);
        for w in 0..warps {
            sm.assign_warp(w, u32::MAX, w / 2);
        }

        // (due_cycle, packet) responses synthesized from the SM's output.
        let mut inbox: Vec<(u64, Packet)> = Vec::new();
        for now in 0..2_000u64 {
            sm.check_sched_consistency().unwrap_or_else(|e| panic!("{e}"));
            prop_assert_eq!(
                sm.next_work_at(now),
                sm.next_work_at_oracle(now),
                "horizon diverged from full-scan oracle at cycle {}",
                now
            );
            sm.tick(now, &mut env);
            // Answer the SM's requests after randomized delays.
            while let Some(p) = sm.out.pop_front() {
                match p.kind {
                    PacketKind::ReadReq { addr, tag, .. } => {
                        let d = 1 + env.next() % fill_delay.max(1);
                        inbox.push((now + d, Packet::new(
                            Node::L2(0),
                            Node::Sm(0),
                            now,
                            PacketKind::ReadResp { addr, bytes: 128, tag },
                        )));
                    }
                    PacketKind::OffloadCmd { token, .. } if !env.flip(drop_ack_pct) => {
                        let d = 1 + env.next() % ack_delay.max(1);
                        inbox.push((now + d, Packet::new(
                            Node::Nsu(0),
                            Node::Sm(0),
                            now,
                            PacketKind::OffloadAck {
                                token,
                                id: OffloadId { sm: 0, warp: 0, seq: 0 },
                                regs_out: 0,
                                active: 32,
                                values: vec![],
                            },
                        )));
                    }
                    _ => {} // writes, RDF, WTA: sink
                }
            }
            let due: Vec<Packet> = {
                let mut due = Vec::new();
                inbox.retain(|(at, p)| {
                    if *at <= now {
                        due.push(p.clone());
                        false
                    } else {
                        true
                    }
                });
                due
            };
            for p in due {
                sm.deliver(now, p, &mut env).expect("deliver");
            }
            if sm.is_done() && inbox.is_empty() {
                break;
            }
        }
        sm.check_sched_consistency().unwrap_or_else(|e| panic!("{e}"));
    }
}

/// Mutation test: disable one wake-wheel update site (via the test-only
/// sabotage knob) and demand the consistency checker catch the stale
/// membership *by name* — proving the oracle actually guards every site.
#[test]
fn dropped_wake_wheel_update_is_caught_by_name() {
    let program = Workload::Vadd.build(&Scale { warps: 2, iters: 2 });
    let sys = SystemConfig::default();
    let kernel = Arc::new(compile(&program, &CompilerConfig::default()));
    let mut sm = Sm::new(SmConfig::from_system(0, &sys), &sys, kernel);
    sm.sabotage_drop_wheel = true;
    let mut env = RandEnv::new(7, 0, 100);
    sm.assign_warp(0, u32::MAX, 0);
    sm.assign_warp(1, u32::MAX, 0);
    for now in 0..200 {
        sm.tick(now, &mut env);
        if let Err(msg) = sm.check_sched_consistency() {
            assert!(
                msg.contains("wake_wheel"),
                "checker must name the stale structure, got: {msg}"
            );
            return;
        }
    }
    panic!("dropped wake-wheel update site was never caught");
}
