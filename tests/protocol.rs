//! Protocol-level integration tests: the partitioned-execution packet
//! protocol (§4.1), credit flow (§4.3), and coherence (§4.2) observed
//! through a live system.

use standardized_ndp::prelude::*;

const MAX: u64 = 30_000_000;

fn run(mut cfg: SystemConfig, w: Workload, warps: u32, iters: u32) -> RunResult {
    cfg.gpu.num_sms = 8;
    let p = w.build(&Scale { warps, iters });
    System::new(cfg, &p)
        .run(MAX)
        .expect("no protocol violation")
}

#[test]
fn cmd_buffer_of_two_still_completes() {
    // Credit-based flow control must degrade throughput, never deadlock.
    let mut cfg = SystemConfig::naive_ndp();
    cfg.nsu.cmd_entries = 2;
    let r = run(cfg, Workload::Vadd, 64, 4);
    assert!(!r.timed_out, "tiny command buffer deadlocked");
    assert!(r.offloaded > 0);
}

#[test]
fn tiny_read_data_buffer_still_completes() {
    let mut cfg = SystemConfig::naive_ndp();
    cfg.nsu.read_data_entries = 8;
    cfg.nsu.write_addr_entries = 8;
    let r = run(cfg, Workload::Bprop, 32, 4);
    assert!(!r.timed_out, "tiny NDP buffers deadlocked");
}

#[test]
fn deep_buffers_never_slow_things_down() {
    let base = run(SystemConfig::naive_ndp(), Workload::Vadd, 64, 4);
    let mut cfg = SystemConfig::naive_ndp();
    cfg.nsu.cmd_entries = 64;
    cfg.nsu.read_data_entries = 1024;
    cfg.nsu.write_addr_entries = 1024;
    let deep = run(cfg, Workload::Vadd, 64, 4);
    assert!(
        deep.cycles <= base.cycles + base.cycles / 10,
        "deeper buffers regressed: {} vs {}",
        deep.cycles,
        base.cycles
    );
}

#[test]
fn naive_ndp_inflates_warp_idle() {
    // The §6 diagnosis: full offload turns GPU warps into ACK-waiters.
    let base = run(SystemConfig::baseline(), Workload::Stn, 64, 8);
    let naive = run(SystemConfig::naive_ndp(), Workload::Stn, 64, 8);
    let base_idle = base.issue.warp_idle as f64 / base.issue.no_issue_total().max(1) as f64;
    let naive_idle = naive.issue.warp_idle as f64 / naive.issue.no_issue_total().max(1) as f64;
    assert!(
        naive_idle > base_idle,
        "WarpIdle share should grow under naive NDP: {base_idle:.3} → {naive_idle:.3}"
    );
}

#[test]
fn divergent_gather_ships_fewer_bytes_per_access() {
    // §4.4: for BFS the per-gather GPU traffic drops because RDF responses
    // carry only touched words (and go over the memnet), with the packed
    // result returning in one ACK. The gather windows must outgrow the L2
    // for the effect to show, hence the warp count.
    let base = run(SystemConfig::baseline(), Workload::Bfs, 1024, 4);
    let ndp = run(SystemConfig::naive_ndp(), Workload::Bfs, 1024, 4);
    let base_down = base.gpu_link_bytes;
    let ndp_down = ndp.gpu_link_bytes;
    assert!(
        ndp_down < base_down,
        "BFS NDP must reduce GPU-link bytes: {ndp_down} vs {base_down}"
    );
}

#[test]
fn cache_invalidations_match_offloaded_store_lines() {
    // §4.2: every NSU write produces exactly one invalidation (16 B each).
    let ndp = run(SystemConfig::naive_ndp(), Workload::Vadd, 64, 4);
    // VADD: one store per block instance, unit-stride ⇒ one line per store.
    let expected = ndp.offloaded; // one write line per instance
    let observed = ndp.inval_bytes / 16;
    assert_eq!(observed, expected, "one inval per NSU write line");
}

#[test]
fn ndp_protocol_bytes_classified() {
    let ndp = run(SystemConfig::naive_ndp(), Workload::Vadd, 64, 4);
    assert!(ndp.gpu_link_ndp_bytes > 0);
    assert!(ndp.gpu_link_ndp_bytes <= ndp.gpu_link_bytes);
    let base = run(SystemConfig::baseline(), Workload::Vadd, 64, 4);
    assert_eq!(base.gpu_link_ndp_bytes, 0, "baseline has no NDP packets");
}

#[test]
fn nsu_occupancy_reported_within_bounds() {
    let ndp = run(SystemConfig::naive_ndp(), Workload::Bprop, 64, 4);
    assert!(ndp.nsu_occupancy > 0.0 && ndp.nsu_occupancy <= 1.0);
    assert!(ndp.nsu_icache_util > 0.0 && ndp.nsu_icache_util <= 1.0);
}

#[test]
fn ro_cache_reduces_bprop_link_traffic() {
    // §7.1's suggested fix, implemented as an extension: with a small
    // read-only NSU cache the hot structure ships once per NSU, not once
    // per instance.
    let plain = run(SystemConfig::naive_ndp(), Workload::Bprop, 64, 8);
    let mut cfg = SystemConfig::naive_ndp();
    cfg.nsu.readonly_cache_bytes = 4096;
    let cached = run(cfg, Workload::Bprop, 64, 8);
    assert!(
        cached.gpu_link_bytes < plain.gpu_link_bytes,
        "RO cache must cut GPU-link bytes: {} vs {}",
        cached.gpu_link_bytes,
        plain.gpu_link_bytes
    );
    assert!(!cached.timed_out);
}

#[test]
fn every_offload_cmd_gets_exactly_one_ack() {
    // §4.1 protocol completeness, checked through the observability layer:
    // each block instance's CMD must come back as exactly one ACK — no
    // transaction still in flight after drain, no ACK without a CMD.
    let mut cfg = SystemConfig::naive_ndp();
    cfg.gpu.num_sms = 8;
    let p = Workload::Vadd.build(&Scale {
        warps: 64,
        iters: 4,
    });
    let mut sys = System::new(cfg, &p);
    sys.enable_obs(ObsConfig::on());
    let r = sys.run(MAX).unwrap();
    assert!(!r.timed_out, "run did not drain");
    let obs = r.obs.as_ref().expect("observability enabled");
    assert!(r.offloaded > 0);
    assert_eq!(obs.txn_issued, r.offloaded, "one tracked txn per offload");
    assert_eq!(obs.txn_completed, obs.txn_issued, "every CMD acked");
    assert_eq!(obs.txn_inflight, 0, "nothing in flight after drain");
    assert_eq!(obs.orphan_acks, 0, "no ACK without a matching CMD");
    let e2e = obs.segment("end_to_end").expect("histogram present");
    assert_eq!(e2e.count, obs.txn_completed);
    assert!(e2e.p50 > 0, "round trips take nonzero cycles");
}

#[test]
fn rdf_probe_ablation_changes_traffic_mix() {
    let probed = run(SystemConfig::naive_ndp(), Workload::Bprop, 64, 4);
    let mut cfg = SystemConfig::naive_ndp();
    cfg.nsu.rdf_probes_gpu_cache = false;
    let blind = run(cfg, Workload::Bprop, 64, 4);
    assert!(!blind.timed_out);
    // Without cache probing, hits stop shipping data on the GPU link...
    assert!(blind.gpu_link_bytes < probed.gpu_link_bytes);
    // ...and the DRAM absorbs the reads instead.
    assert!(blind.dram.read_bytes > probed.dram.read_bytes);
}
